package eval

import (
	"math"
	"strings"
	"sync"
	"testing"
)

var (
	quickOnce sync.Once
	quick     *Suite
)

func quickSuite(t *testing.T) *Suite {
	t.Helper()
	quickOnce.Do(func() { quick = NewSuite(ScaleQuick) })
	return quick
}

func TestSuiteGeneration(t *testing.T) {
	s := quickSuite(t)
	if len(s.Bat.Points) == 0 || len(s.Vehicle.Points) == 0 || len(s.Walk.Points) == 0 {
		t.Fatalf("empty datasets: %s", s.Describe())
	}
	if len(s.Combined.Points) != len(s.Bat.Points)+len(s.Vehicle.Points) {
		t.Errorf("combined size mismatch")
	}
	// Timestamps strictly increasing within each dataset.
	for _, ds := range []Dataset{s.Bat, s.Vehicle, s.Walk, s.Combined} {
		for i := 1; i < len(ds.Points); i++ {
			if ds.Points[i].T <= ds.Points[i-1].T {
				t.Fatalf("%s: time not increasing at %d", ds.Name, i)
			}
		}
	}
	if !strings.Contains(s.Describe(), "bat=") {
		t.Error("Describe malformed")
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	s := quickSuite(t)
	for _, algo := range []Algo{AlgoBQS, AlgoFBQS, AlgoBDP, AlgoBGD, AlgoDP, AlgoDR} {
		r, err := Run(algo, s.Bat, 10, s.BufSize)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if r.Keys < 2 || r.Keys > r.Points {
			t.Errorf("%s: keys = %d of %d", algo, r.Keys, r.Points)
		}
		if !r.BoundOK {
			t.Errorf("%s: error bound violated (worst %v)", algo, r.WorstDev)
		}
		if r.Rate <= 0 || r.Rate > 1 {
			t.Errorf("%s: rate = %v", algo, r.Rate)
		}
	}
	if _, err := Run(Algo("nope"), s.Bat, 10, 32); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestFig3(t *testing.T) {
	s := quickSuite(t)
	r, err := Fig3(s.Bat, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no traced rows")
	}
	if len(r.Rows) > 100 {
		t.Errorf("rows = %d > 100", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.LB > row.UB+1e-9 {
			t.Errorf("row %d: lb %v > ub %v", row.Index, row.LB, row.UB)
		}
		if !math.IsNaN(row.Actual) && (row.Actual < row.LB-1e-6 || row.Actual > row.UB+1e-6) {
			t.Errorf("row %d: actual %v outside bounds", row.Index, row.Actual)
		}
	}
	// The paper: "in more than 90% of the occasions we can determine if a
	// point is a key point by using only the bounds".
	if r.Decisive < 0.5 {
		t.Errorf("bounds decisive on only %.0f%% of traced points", 100*r.Decisive)
	}
	if !strings.Contains(r.String(), "Figure 3") {
		t.Error("String() malformed")
	}
}

func TestFig6(t *testing.T) {
	s := quickSuite(t)
	r, err := Fig6(s.Bat, []float64{2, 10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Pruning < 0.5 || row.Pruning > 1 {
			t.Errorf("pruning at %v m = %v", row.Tolerance, row.Pruning)
		}
	}
	if !strings.Contains(r.String(), "pruning") {
		t.Error("String() malformed")
	}
}

func TestFig7Orderings(t *testing.T) {
	s := quickSuite(t)
	r, err := Fig7(s.Bat, []float64{10, 20}, s.BufSize)
	if err != nil {
		t.Fatal(err)
	}
	if !r.BoundOK {
		t.Error("some error-bounded run violated its bound")
	}
	for _, row := range r.Rows {
		if row.Rate[AlgoBQS] > row.Rate[AlgoFBQS]*(1+1e-9) {
			t.Errorf("d=%v: BQS rate %v > FBQS %v", row.Tolerance, row.Rate[AlgoBQS], row.Rate[AlgoFBQS])
		}
		// The windowed baselines keep notably more than BQS (the paper
		// reports 30-50%).
		if row.Rate[AlgoBDP] < row.Rate[AlgoBQS] {
			t.Errorf("d=%v: BDP beat BQS", row.Tolerance)
		}
		if row.Rate[AlgoBGD] < row.Rate[AlgoBQS] {
			t.Errorf("d=%v: BGD beat BQS", row.Tolerance)
		}
	}
	if !strings.Contains(r.String(), "Figure 7") {
		t.Error("String() malformed")
	}
}

func TestFig8(t *testing.T) {
	s := quickSuite(t)
	r, err := Fig8(s.Walk, []float64{2, 10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxX-r.MinX > 10001 || r.MaxY-r.MinY > 10001 {
		t.Errorf("walk extent too large: %+v", r)
	}
	for _, row := range r.Rows {
		if row.DR <= row.FBQS {
			t.Errorf("d=%v: DR %d ≤ FBQS %d; paper expects DR to need more points",
				row.Tolerance, row.DR, row.FBQS)
		}
	}
	if !strings.Contains(r.String(), "Figure 8") {
		t.Error("String() malformed")
	}
}

func TestTable1Scaling(t *testing.T) {
	r, err := Table1([]int{2000, 4000, 8000, 16000})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatal("rows missing")
	}
	// FBQS per-point cost must stay roughly flat; the windowed baseline's
	// grows roughly linearly. Thresholds are generous: timing noise on a
	// shared machine.
	if r.FBQSExponent > 0.5 {
		t.Errorf("FBQS per-point exponent = %v, want ≈ 0", r.FBQSExponent)
	}
	if r.BGDExponent < 0.45 {
		t.Errorf("BGD per-point exponent = %v, want ≈ 1", r.BGDExponent)
	}
	for _, row := range r.Rows {
		if row.FBQSSpace > 8 {
			t.Errorf("n=%d: FBQS buffered %d points", row.N, row.FBQSSpace)
		}
	}
	if !strings.Contains(r.String(), "Table I") {
		t.Error("String() malformed")
	}
}

func TestTable2(t *testing.T) {
	s := quickSuite(t)
	r, err := Table2(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	days := map[Algo]float64{}
	for _, row := range r.Rows {
		if row.Days <= r.UncompressedDays {
			t.Errorf("%s: %v days not better than uncompressed %v", row.Algo, row.Days, r.UncompressedDays)
		}
		days[row.Algo] = row.Days
	}
	// Orderings of Table II: BQS ≥ FBQS > BDP/BGD.
	if days[AlgoBQS] < days[AlgoFBQS]*(1-1e-9) {
		t.Errorf("BQS days %v < FBQS %v", days[AlgoBQS], days[AlgoFBQS])
	}
	if days[AlgoFBQS] <= days[AlgoBDP] || days[AlgoFBQS] <= days[AlgoBGD] {
		t.Errorf("FBQS days %v not above BDP %v / BGD %v", days[AlgoFBQS], days[AlgoBDP], days[AlgoBGD])
	}
	if r.DROverhead <= 0 {
		t.Errorf("DR overhead = %v", r.DROverhead)
	}
	if !strings.Contains(r.String(), "Table II") {
		t.Error("String() malformed")
	}
}

func TestTable3(t *testing.T) {
	s := quickSuite(t)
	r, err := Table3(s, []int{32, 64}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1+2*2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	var fbqsRate float64
	rates := map[Algo]map[int]float64{AlgoBDP: {}, AlgoBGD: {}}
	for _, row := range r.Rows {
		if row.Algo == AlgoFBQS {
			fbqsRate = row.Rate
			continue
		}
		rates[row.Algo][row.BufSize] = row.Rate
	}
	// Larger buffers improve the windowed baselines' rates.
	if rates[AlgoBGD][64] > rates[AlgoBGD][32]*(1+1e-9) {
		t.Errorf("BGD rate did not improve with buffer: %v", rates[AlgoBGD])
	}
	// FBQS beats both at the paper's default buffer.
	if fbqsRate > rates[AlgoBDP][32] || fbqsRate > rates[AlgoBGD][32] {
		t.Errorf("FBQS rate %v not best at buffer 32 (%v, %v)",
			fbqsRate, rates[AlgoBDP][32], rates[AlgoBGD][32])
	}
	if !strings.Contains(r.String(), "Table III") {
		t.Error("String() malformed")
	}
	// Truncation works.
	r2, err := Table3(s, []int{32}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Points != 100 {
		t.Errorf("truncated points = %d", r2.Points)
	}
}

func TestAblation(t *testing.T) {
	s := quickSuite(t)
	r, err := Ablation(s.Bat, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 8 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The segment metric can only keep more points than the line metric.
	var lineRate, segRate float64
	for _, row := range r.Rows {
		switch row.Name {
		case "BQS (rotation 5)":
			lineRate = row.Rate
		case "BQS (segment metric)":
			segRate = row.Rate
		}
	}
	if segRate < lineRate*(1-1e-9) {
		t.Errorf("segment metric rate %v below line metric %v", segRate, lineRate)
	}
	// BQS's worst deviation is bounded; SQUISH-E's SED at the same budget
	// typically is not.
	if r.BQSDevWorst > 10*(1+1e-9) {
		t.Errorf("BQS worst deviation %v > tolerance", r.BQSDevWorst)
	}
	if !strings.Contains(r.String(), "Ablations") {
		t.Error("String() malformed")
	}
}

func TestFitExponent(t *testing.T) {
	rows := []Table1Row{
		{N: 1000, FBQSPerPt: 100},
		{N: 2000, FBQSPerPt: 100},
		{N: 4000, FBQSPerPt: 100},
	}
	if e := fitExponent(rows, func(r Table1Row) float64 { return float64(r.FBQSPerPt) }); math.Abs(e) > 1e-9 {
		t.Errorf("flat exponent = %v", e)
	}
	rows = []Table1Row{
		{N: 1000, FBQSPerPt: 1000},
		{N: 2000, FBQSPerPt: 2000},
		{N: 4000, FBQSPerPt: 4000},
	}
	if e := fitExponent(rows, func(r Table1Row) float64 { return float64(r.FBQSPerPt) }); math.Abs(e-1) > 1e-9 {
		t.Errorf("linear exponent = %v", e)
	}
	if e := fitExponent(rows[:1], func(r Table1Row) float64 { return 1 }); e != 0 {
		t.Errorf("single-row exponent = %v", e)
	}
}
