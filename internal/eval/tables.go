package eval

import (
	"fmt"
	"math"
	"strings"
	"time"

	"github.com/trajcomp/bqs/internal/baseline"
	"github.com/trajcomp/bqs/internal/core"
	"github.com/trajcomp/bqs/internal/device"
)

// ---------------------------------------------------------------------------
// Table I: worst-case complexity, verified empirically.

// Table1Row is one input size's per-point cost.
type Table1Row struct {
	N         int
	FBQSPerPt time.Duration // flat in n (O(1) per point)
	BGDPerPt  time.Duration // grows linearly in n with unbounded buffer
	BDPPerPt  time.Duration
	FBQSSpace int // buffered points (constant)
	BGDSpace  int // buffered points (linear)
}

// Table1Result verifies Table I's complexity rows empirically on an
// adversarial input (a straight line, the worst case for buffer growth:
// no cut ever triggers, so windowed algorithms with unbounded buffers do
// O(n) work per point while FBQS stays O(1)).
type Table1Result struct {
	Rows         []Table1Row
	FBQSExponent float64 // fitted log-log slope of per-point cost (≈ 0)
	BGDExponent  float64 // ≈ 1 (per-point cost grows linearly → total O(n²))
}

// Table1 measures per-point cost scaling. Sizes should grow geometrically
// (e.g. 2000, 4000, 8000, 16000).
func Table1(sizes []int) (Table1Result, error) {
	var res Table1Result
	// Warm up caches and the scheduler so the smallest size isn't inflated
	// by cold-start effects, which would flatten the fitted exponents.
	{
		warm := make([]core.Point, 512)
		for i := range warm {
			warm[i] = core.Point{X: float64(i) * 50, T: float64(i)}
		}
		if w, err := baseline.NewBufferedGreedy(10, len(warm)+1, core.MetricLine); err == nil {
			for _, p := range warm {
				w.Push(p)
			}
		}
	}
	for _, n := range sizes {
		pts := make([]core.Point, n)
		for i := range pts {
			pts[i] = core.Point{X: float64(i) * 50, Y: 0, T: float64(i)}
		}

		fb, err := core.NewCompressor(core.Config{Tolerance: 10, Mode: core.ModeFast, RotationWarmup: -1})
		if err != nil {
			return res, err
		}
		start := time.Now()
		fb.CompressBatch(pts)
		fbqsPer := time.Since(start) / time.Duration(n)

		// Unbounded-buffer BGD: buffer size n+1 never fills.
		bgd, err := baseline.NewBufferedGreedy(10, n+1, core.MetricLine)
		if err != nil {
			return res, err
		}
		start = time.Now()
		for _, p := range pts {
			bgd.Push(p)
		}
		bgd.Flush()
		bgdPer := time.Since(start) / time.Duration(n)

		// Unbounded-buffer BDP: one DP pass over everything at flush. DP on
		// a straight line is O(n) per level and O(n) total here, so use the
		// windowed form at buffer n to capture its repeated-scan cost.
		bdp, err := baseline.NewBufferedDP(10, n, core.MetricLine)
		if err != nil {
			return res, err
		}
		start = time.Now()
		for _, p := range pts {
			bdp.Push(p)
		}
		bdp.Flush()
		bdpPer := time.Since(start) / time.Duration(n)

		res.Rows = append(res.Rows, Table1Row{
			N: n, FBQSPerPt: fbqsPer, BGDPerPt: bgdPer, BDPPerPt: bdpPer,
			FBQSSpace: fb.BufferedPoints(), BGDSpace: n,
		})
	}
	res.FBQSExponent = fitExponent(res.Rows, func(r Table1Row) float64 { return float64(r.FBQSPerPt) })
	res.BGDExponent = fitExponent(res.Rows, func(r Table1Row) float64 { return float64(r.BGDPerPt) })
	return res, nil
}

// fitExponent returns the least-squares slope of log(cost) vs. log(n).
func fitExponent(rows []Table1Row, cost func(Table1Row) float64) float64 {
	if len(rows) < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(rows))
	for _, r := range rows {
		x := math.Log(float64(r.N))
		c := cost(r)
		if c <= 0 {
			c = 1
		}
		y := math.Log(c)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// String renders the measurement.
func (r Table1Result) String() string {
	t := &textTable{header: []string{"n", "FBQS ns/pt", "BGD∞ ns/pt", "BDP∞ ns/pt", "FBQS buf", "BGD buf"}}
	for _, row := range r.Rows {
		t.addRow(fmt.Sprintf("%d", row.N),
			fmt.Sprintf("%d", row.FBQSPerPt.Nanoseconds()),
			fmt.Sprintf("%d", row.BGDPerPt.Nanoseconds()),
			fmt.Sprintf("%d", row.BDPPerPt.Nanoseconds()),
			fmt.Sprintf("%d", row.FBQSSpace),
			fmt.Sprintf("%d", row.BGDSpace))
	}
	return fmt.Sprintf("Table I — empirical worst-case scaling (straight-line input)\n%s"+
		"fitted per-point cost exponents: FBQS %.2f (O(1) ⇒ ≈ 0), BGD %.2f (O(n) ⇒ ≈ 1)\n",
		t.String(), r.FBQSExponent, r.BGDExponent)
}

// ---------------------------------------------------------------------------
// Table II: estimated operational time.

// Table2Row is one algorithm's rate and operational days.
type Table2Row struct {
	Algo Algo
	Rate float64
	Days float64
}

// Table2Result reproduces Table II: average compression rate at 10 m over
// the two datasets, turned into operational days by the storage model.
// The DR row follows the paper's method: FBQS's rate scaled by the
// measured DR overhead on the synthetic data.
type Table2Result struct {
	Rows             []Table2Row
	UncompressedDays float64
	DROverhead       float64 // measured on synthetic data at 10 m
}

// Table2 runs the operational-time estimate.
func Table2(s *Suite) (Table2Result, error) {
	var res Table2Result
	model := device.DefaultStorageModel()
	res.UncompressedDays = model.UncompressedDays()

	// Measured DR overhead vs FBQS on the synthetic dataset at 10 m
	// (the paper uses 39% from Figure 8(b)).
	rf, err := Run(AlgoFBQS, s.Walk, 10, 0)
	if err != nil {
		return res, err
	}
	rd, err := Run(AlgoDR, s.Walk, 10, 0)
	if err != nil {
		return res, err
	}
	res.DROverhead = float64(rd.Keys)/float64(rf.Keys) - 1

	var fbqsRate float64
	for _, algo := range []Algo{AlgoBQS, AlgoFBQS, AlgoBDP, AlgoBGD} {
		rb, err := Run(algo, s.Bat, 10, s.BufSize)
		if err != nil {
			return res, err
		}
		rv, err := Run(algo, s.Vehicle, 10, s.BufSize)
		if err != nil {
			return res, err
		}
		rate := (rb.Rate + rv.Rate) / 2
		if algo == AlgoFBQS {
			fbqsRate = rate
		}
		days, err := model.OperationalDays(rate)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, Table2Row{Algo: algo, Rate: rate, Days: days})
	}
	drRate := fbqsRate * (1 + res.DROverhead)
	if drRate > 1 {
		drRate = 1
	}
	days, err := model.OperationalDays(drRate)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, Table2Row{Algo: AlgoDR, Rate: drRate, Days: days})
	return res, nil
}

// String renders the table.
func (r Table2Result) String() string {
	t := &textTable{header: []string{"algorithm", "compression rate", "days"}}
	for _, row := range r.Rows {
		t.addRow(string(row.Algo), pc(row.Rate), fmt.Sprintf("%.0f", row.Days))
	}
	return fmt.Sprintf("Table II — estimated operational time (10 m tolerance, 50 KB GPS budget)\n%s"+
		"uncompressed: %.1f days; DR overhead vs FBQS measured at %.0f%%\n",
		t.String(), r.UncompressedDays, 100*r.DROverhead)
}

// ---------------------------------------------------------------------------
// Table III: compression rate and run time vs. buffer size.

// Table3Row is one algorithm/buffer cell pair.
type Table3Row struct {
	Algo    Algo
	BufSize int // 0 for FBQS (no buffer)
	Rate    float64
	Elapsed time.Duration
}

// Table3Result reproduces Table III on the combined stream.
type Table3Result struct {
	Points int
	Rows   []Table3Row
}

// Table3 measures rate and run time for FBQS and the windowed baselines at
// the paper's buffer sizes. n caps the stream length (the paper uses
// 87,704 points); 0 means the whole combined stream.
func Table3(s *Suite, bufSizes []int, n int) (Table3Result, error) {
	ds := s.Combined
	if n > 0 && n < len(ds.Points) {
		ds = Dataset{Name: ds.Name, Samples: ds.Samples[:n], Points: ds.Points[:n]}
	}
	res := Table3Result{Points: len(ds.Points)}

	rf, err := Run(AlgoFBQS, ds, 10, 0)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, Table3Row{Algo: AlgoFBQS, Rate: rf.Rate, Elapsed: rf.Duration})
	for _, algo := range []Algo{AlgoBDP, AlgoBGD} {
		for _, b := range bufSizes {
			r, err := Run(algo, ds, 10, b)
			if err != nil {
				return res, err
			}
			res.Rows = append(res.Rows, Table3Row{Algo: algo, BufSize: b, Rate: r.Rate, Elapsed: r.Duration})
		}
	}
	return res, nil
}

// String renders the table.
func (r Table3Result) String() string {
	t := &textTable{header: []string{"algorithm", "buffer", "compression rate", "run time (ms)"}}
	for _, row := range r.Rows {
		buf := "—"
		if row.BufSize > 0 {
			buf = fmt.Sprintf("%d", row.BufSize)
		}
		t.addRow(string(row.Algo), buf, pc(row.Rate),
			fmt.Sprintf("%.1f", float64(row.Elapsed.Microseconds())/1000))
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table III — rate and run time vs. buffer size (%d points, d = 10 m)\n%s",
		r.Points, t.String())
	return sb.String()
}
