package device

import (
	"math"
	"testing"
)

// Table II of the paper: compression rates and resulting operational days.
func TestOperationalDaysReproducesTableII(t *testing.T) {
	m := DefaultStorageModel()
	cases := []struct {
		algo string
		rate float64
		days float64
	}{
		{"BQS", 0.048, 62},
		{"FBQS", 0.050, 60},
		{"BDP", 0.0665, 45},
		{"BGD", 0.0675, 44},
		{"DR", 0.0665, 45},
	}
	for _, c := range cases {
		got, err := m.OperationalDays(c.rate)
		if err != nil {
			t.Fatalf("%s: %v", c.algo, err)
		}
		// The paper's displayed rates are rounded to 2-3 significant
		// digits (5.0% yields 59.25 days but the paper prints 60), so
		// allow ±1 day.
		if math.Abs(math.Round(got)-c.days) > 1 {
			t.Errorf("%s: %.2f days (rounds to %v), want %v±1", c.algo, got, math.Round(got), c.days)
		}
	}
}

func TestUncompressedDays(t *testing.T) {
	m := DefaultStorageModel()
	// 50 KB / 12 B = 4266 samples; at 1440/day ≈ 2.96 days.
	got := m.UncompressedDays()
	if got < 2.9 || got > 3.0 {
		t.Errorf("uncompressed days = %v, want ≈ 2.96", got)
	}
}

func TestCapacity(t *testing.T) {
	m := DefaultStorageModel()
	if got := m.Capacity(); got != 50*1024/12 {
		t.Errorf("capacity = %d", got)
	}
}

func TestOperationalDaysValidation(t *testing.T) {
	m := DefaultStorageModel()
	for _, rate := range []float64{0, -0.5, 1.5, math.NaN()} {
		if _, err := m.OperationalDays(rate); err == nil {
			t.Errorf("rate %v accepted", rate)
		}
	}
	bad := StorageModel{}
	if _, err := bad.OperationalDays(0.05); err == nil {
		t.Error("zero model accepted")
	}
	if bad.UncompressedDays() != 0 {
		t.Error("zero model uncompressed days != 0")
	}
}

func TestImprovementRatiosMatchPaper(t *testing.T) {
	// "a maximum 36% improvement from FBQS over the existing methods
	// (60 v.s. 44), and a maximum 41% improvement from BQS (62 v.s. 44)".
	m := DefaultStorageModel()
	bqs, _ := m.OperationalDays(0.048)
	fbqs, _ := m.OperationalDays(0.050)
	bgd, _ := m.OperationalDays(0.0675)
	// Rounded-rate slack as in TestOperationalDaysReproducesTableII.
	if imp := (math.Round(fbqs) - math.Round(bgd)) / math.Round(bgd); math.Abs(imp-0.36) > 0.03 {
		t.Errorf("FBQS improvement = %v, want ≈ 0.36", imp)
	}
	if imp := (math.Round(bqs) - math.Round(bgd)) / math.Round(bgd); math.Abs(imp-0.41) > 0.03 {
		t.Errorf("BQS improvement = %v, want ≈ 0.41", imp)
	}
}

func TestEnergyModel(t *testing.T) {
	e := DefaultEnergyModel()
	// GPS dominates: compression decisions change daily draw by < 0.1%.
	base := e.DailyConsumptionJ(0)
	withCPU := e.DailyConsumptionJ(3) // generous decisions per point
	if (withCPU-base)/base > 0.001 {
		t.Errorf("CPU share too large: %v vs %v", withCPU, base)
	}
	days := e.EnergyLimitedDays(1)
	if days < 1 {
		t.Errorf("energy-limited days = %v", days)
	}
	// Harvest above consumption yields unlimited runtime.
	e2 := e
	e2.HarvestJPerDay = 1e9
	if !math.IsInf(e2.EnergyLimitedDays(1), 1) {
		t.Error("surplus harvest should be unlimited")
	}
}

func TestCombinedOperationalDays(t *testing.T) {
	s := DefaultStorageModel()
	e := DefaultEnergyModel()
	got, err := OperationalDays(s, e, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	storage, _ := s.OperationalDays(0.05)
	energy := e.EnergyLimitedDays(1)
	want := math.Min(storage, energy)
	if got != want {
		t.Errorf("combined = %v, want min(%v, %v)", got, storage, energy)
	}
	if _, err := OperationalDays(s, e, 0, 1); err == nil {
		t.Error("bad rate accepted")
	}
}

func TestMemoryBudgetClaims(t *testing.T) {
	// The paper's FBQS state claim: ≤ 32 significant points besides the
	// program image. 32 points × 2 coords × 8 bytes = 512 B ≪ 4 KB RAM.
	if 32*2*8 > RAMBytes/4 {
		t.Error("significant-point state would not fit comfortably in Camazotz RAM")
	}
}
