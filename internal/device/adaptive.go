package device

import (
	"errors"
	"math"
)

// AdaptiveController closes the loop the paper leaves open between the
// compression tolerance and the storage budget: given a target operational
// horizon (days until the tracker can next offload), it observes the
// achieved compression rate and nudges the tolerance so the flash budget
// lasts exactly that long — coarser positions when storage runs hot,
// finer when there is headroom. This automates the trade the ageing
// procedure (Section V-F) makes retrospectively.
//
// The control law is multiplicative-increase/multiplicative-decrease on
// the tolerance, driven by the ratio of the observed (exponentially
// smoothed) rate to the rate the budget affords. It is deliberately simple
// — it must run on a 16-bit MCU.
type AdaptiveController struct {
	model      StorageModel
	targetDays float64
	minTol     float64
	maxTol     float64
	alpha      float64 // EMA smoothing for the observed rate
	gain       float64 // adjustment aggressiveness per observation

	tol     float64
	emaRate float64
	emaSet  bool
}

// NewAdaptiveController returns a controller starting at startTol metres,
// clamped to [minTol, maxTol], aiming for targetDays of recording on the
// given storage model.
func NewAdaptiveController(model StorageModel, targetDays, startTol, minTol, maxTol float64) (*AdaptiveController, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if targetDays <= 0 || math.IsNaN(targetDays) {
		return nil, errors.New("device: target days must be positive")
	}
	if !(minTol > 0) || !(maxTol >= minTol) || !(startTol >= minTol) || !(startTol <= maxTol) {
		return nil, errors.New("device: need 0 < minTol ≤ startTol ≤ maxTol")
	}
	return &AdaptiveController{
		model: model, targetDays: targetDays,
		minTol: minTol, maxTol: maxTol,
		alpha: 0.3, gain: 0.25,
		tol: startTol,
	}, nil
}

// Tolerance returns the current tolerance in metres.
func (c *AdaptiveController) Tolerance() float64 { return c.tol }

// RequiredRate returns the compression rate the budget affords for the
// target horizon.
func (c *AdaptiveController) RequiredRate() float64 {
	return float64(c.model.Capacity()) / (c.model.SamplesPerDay * c.targetDays)
}

// Observe feeds one observation window (key points emitted and points
// consumed since the last call) and returns the updated tolerance.
// Windows with no points leave the tolerance unchanged.
func (c *AdaptiveController) Observe(keyPoints, points int) float64 {
	if points <= 0 {
		return c.tol
	}
	rate := float64(keyPoints) / float64(points)
	if !c.emaSet {
		c.emaRate = rate
		c.emaSet = true
	} else {
		c.emaRate = c.alpha*rate + (1-c.alpha)*c.emaRate
	}
	required := c.RequiredRate()
	if required <= 0 {
		return c.tol
	}
	// ratio > 1: storing too much → relax the tolerance; ratio < 1: budget
	// headroom → tighten for better fidelity.
	ratio := c.emaRate / required
	adj := 1 + c.gain*(ratio-1)
	// Clamp the per-step adjustment to keep the loop stable.
	if adj > 2 {
		adj = 2
	} else if adj < 0.5 {
		adj = 0.5
	}
	c.tol *= adj
	if c.tol < c.minTol {
		c.tol = c.minTol
	} else if c.tol > c.maxTol {
		c.tol = c.maxTol
	}
	return c.tol
}

// ProjectedDays returns the operational horizon at the smoothed rate, or
// the uncompressed horizon before any observation.
func (c *AdaptiveController) ProjectedDays() float64 {
	if !c.emaSet || c.emaRate <= 0 {
		return c.model.UncompressedDays()
	}
	d, err := c.model.OperationalDays(math.Min(1, c.emaRate))
	if err != nil {
		return 0
	}
	return d
}
