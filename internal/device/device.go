// Package device models the Camazotz tracking platform of Section III-A —
// a TI CC430F5137 SoC with 32 KB ROM, 4 KB RAM and 1 MB external flash,
// solar-recharged, sampling GPS once per minute — and derives the
// operational-time estimates of Table II: how long the tracker can keep
// recording compressed trajectories before its GPS storage budget runs out.
package device

import (
	"errors"
	"math"
)

// Camazotz hardware constants from the paper.
const (
	// RAMBytes is the SoC's RAM (4 KBytes).
	RAMBytes = 4 * 1024
	// ROMBytes is the SoC's program flash (32 KBytes).
	ROMBytes = 32 * 1024
	// FlashBytes is the external storage (1 MByte).
	FlashBytes = 1024 * 1024
	// BytesPerSample is the wire cost of one GPS sample: latitude,
	// longitude, timestamp (12 bytes, Section VI-C4).
	BytesPerSample = 12
)

// StorageModel is the Table II storage budget: a slice of flash reserved
// for GPS traces, filled at the sampling rate scaled by the compression
// rate.
type StorageModel struct {
	// BudgetBytes is the flash budget for GPS traces; the paper assumes
	// "of the 1 MBytes storage, GPS traces can use up to 50 KBytes".
	BudgetBytes int
	// SampleBytes is the wire size of one stored sample (12 bytes).
	SampleBytes int
	// SamplesPerDay is the GPS acquisition rate (1/min ⇒ 1440).
	SamplesPerDay float64
}

// DefaultStorageModel returns the paper's Table II setup.
func DefaultStorageModel() StorageModel {
	return StorageModel{
		BudgetBytes:   50 * 1024,
		SampleBytes:   BytesPerSample,
		SamplesPerDay: 24 * 60,
	}
}

// Validate checks the model's parameters.
func (m StorageModel) Validate() error {
	if m.BudgetBytes <= 0 || m.SampleBytes <= 0 || m.SamplesPerDay <= 0 {
		return errors.New("device: storage model fields must be positive")
	}
	return nil
}

// Capacity returns how many samples fit in the budget.
func (m StorageModel) Capacity() int {
	return m.BudgetBytes / m.SampleBytes
}

// OperationalDays returns how many days the device can record before the
// GPS budget fills, when the compressor keeps compressionRate of the
// acquired samples. This reproduces Table II: at 1 sample/min, 50 KB and
// 12 B/sample, a 4.8% rate yields 62 days; 6.75% yields 44.
func (m StorageModel) OperationalDays(compressionRate float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if compressionRate <= 0 || compressionRate > 1 || math.IsNaN(compressionRate) {
		return 0, errors.New("device: compression rate must be in (0, 1]")
	}
	storedPerDay := m.SamplesPerDay * compressionRate
	return float64(m.Capacity()) / storedPerDay, nil
}

// UncompressedDays is OperationalDays at rate 1 (no compression): the
// baseline the paper's ~3 days figure comes from.
func (m StorageModel) UncompressedDays() float64 {
	d, err := m.OperationalDays(1)
	if err != nil {
		return 0
	}
	return d
}

// EnergyModel is a simple duty-cycle energy budget (an extension beyond
// Table II, which considers storage only): a solar-buffered battery pays a
// fixed cost per GPS fix and a CPU cost per compression decision.
// It answers whether compression's CPU cost is ever material next to the
// GPS cost — on Camazotz-class hardware it is not, which is the paper's
// implicit premise.
type EnergyModel struct {
	BatteryJ       float64 // usable battery energy, joules
	HarvestJPerDay float64 // mean solar harvest per day, joules
	GPSFixJ        float64 // energy per GPS fix
	CPUDecisionJ   float64 // energy per per-point compression decision
	BaseJPerDay    float64 // everything else (radio, sensors, sleep)
	SamplesPerDay  float64
}

// DefaultEnergyModel returns plausible Camazotz-class numbers: a 300 mAh
// LiPo (≈ 4 kJ), ~1 J per (hot-start) GPS fix, microjoule-scale decisions
// on the 16-bit MCU.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		BatteryJ:       4000,
		HarvestJPerDay: 900,
		GPSFixJ:        1.0,
		CPUDecisionJ:   20e-6,
		BaseJPerDay:    150,
		SamplesPerDay:  24 * 60,
	}
}

// DailyConsumptionJ returns the mean daily energy draw when the compressor
// performs decisionsPerPoint state updates per sample.
func (m EnergyModel) DailyConsumptionJ(decisionsPerPoint float64) float64 {
	return m.BaseJPerDay +
		m.SamplesPerDay*m.GPSFixJ +
		m.SamplesPerDay*decisionsPerPoint*m.CPUDecisionJ
}

// EnergyLimitedDays returns how many days the battery lasts at the given
// per-point decision cost, accounting for solar harvest; +Inf when harvest
// covers consumption.
func (m EnergyModel) EnergyLimitedDays(decisionsPerPoint float64) float64 {
	net := m.DailyConsumptionJ(decisionsPerPoint) - m.HarvestJPerDay
	if net <= 0 {
		return math.Inf(1)
	}
	return m.BatteryJ / net
}

// OperationalDays combines the storage and energy limits: the device stops
// at whichever budget exhausts first.
func OperationalDays(s StorageModel, e EnergyModel, compressionRate, decisionsPerPoint float64) (float64, error) {
	sd, err := s.OperationalDays(compressionRate)
	if err != nil {
		return 0, err
	}
	return math.Min(sd, e.EnergyLimitedDays(decisionsPerPoint)), nil
}
