package device

import (
	"math"
	"testing"
)

func TestAdaptiveControllerValidation(t *testing.T) {
	m := DefaultStorageModel()
	if _, err := NewAdaptiveController(m, 0, 10, 2, 50); err == nil {
		t.Error("zero target accepted")
	}
	if _, err := NewAdaptiveController(m, 30, 1, 2, 50); err == nil {
		t.Error("start below min accepted")
	}
	if _, err := NewAdaptiveController(m, 30, 60, 2, 50); err == nil {
		t.Error("start above max accepted")
	}
	if _, err := NewAdaptiveController(StorageModel{}, 30, 10, 2, 50); err == nil {
		t.Error("bad model accepted")
	}
}

func TestAdaptiveControllerRaisesToleranceWhenOverBudget(t *testing.T) {
	m := DefaultStorageModel()
	c, err := NewAdaptiveController(m, 60, 10, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	required := c.RequiredRate() // ≈ 4266/(1440×60) ≈ 4.9%
	if required < 0.04 || required > 0.06 {
		t.Fatalf("required rate = %v", required)
	}
	// Feed windows compressing at 10%: way over budget → tolerance rises.
	start := c.Tolerance()
	for i := 0; i < 20; i++ {
		c.Observe(100, 1000)
	}
	if c.Tolerance() <= start {
		t.Errorf("tolerance did not rise: %v → %v", start, c.Tolerance())
	}
}

func TestAdaptiveControllerLowersToleranceWithHeadroom(t *testing.T) {
	m := DefaultStorageModel()
	c, _ := NewAdaptiveController(m, 60, 10, 2, 100)
	start := c.Tolerance()
	for i := 0; i < 20; i++ {
		c.Observe(10, 1000) // 1%: far under budget
	}
	if c.Tolerance() >= start {
		t.Errorf("tolerance did not fall: %v → %v", start, c.Tolerance())
	}
	if c.Tolerance() < 2 {
		t.Errorf("tolerance below floor: %v", c.Tolerance())
	}
}

func TestAdaptiveControllerClampsAndConverges(t *testing.T) {
	m := DefaultStorageModel()
	c, _ := NewAdaptiveController(m, 60, 10, 2, 50)
	// Pathological windows cannot blow the tolerance out of its band.
	for i := 0; i < 50; i++ {
		c.Observe(1000, 1000)
	}
	if got := c.Tolerance(); got > 50 {
		t.Errorf("tolerance above cap: %v", got)
	}
	for i := 0; i < 100; i++ {
		c.Observe(1, 100000)
	}
	if got := c.Tolerance(); got < 2 {
		t.Errorf("tolerance below floor: %v", got)
	}
	// Exactly on budget: tolerance stays put.
	c2, _ := NewAdaptiveController(m, 60, 10, 2, 50)
	req := c2.RequiredRate()
	for i := 0; i < 10; i++ {
		c2.Observe(int(req*10000), 10000)
	}
	if math.Abs(c2.Tolerance()-10) > 1 {
		t.Errorf("on-budget tolerance drifted to %v", c2.Tolerance())
	}
}

func TestAdaptiveProjectedDays(t *testing.T) {
	m := DefaultStorageModel()
	c, _ := NewAdaptiveController(m, 60, 10, 2, 50)
	if got := c.ProjectedDays(); math.Abs(got-m.UncompressedDays()) > 1e-9 {
		t.Errorf("pre-observation projection = %v", got)
	}
	c.Observe(48, 1000) // 4.8% → the Table II BQS row
	if got := c.ProjectedDays(); math.Abs(got-61.7) > 1 {
		t.Errorf("projection = %v, want ≈ 62", got)
	}
	if c.Observe(0, 0) != c.Tolerance() {
		t.Error("empty window changed tolerance")
	}
}
