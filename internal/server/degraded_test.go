package server

import (
	"errors"
	"math"
	"testing"

	"github.com/trajcomp/bqs/internal/engine"
	"github.com/trajcomp/bqs/internal/proto"
	"github.com/trajcomp/bqs/internal/trajstore"
	"github.com/trajcomp/bqs/internal/trajstore/segmentlog"
	"github.com/trajcomp/bqs/internal/trajstore/segmentlog/vfs"
)

// TestDegradedModeEndToEnd drives the whole degraded-mode lifecycle
// over a loopback connection with a fault-injected disk. A healthy
// batch lands durably; then the disk "fills" (sustained ENOSPC via
// vfs.FaultFS) and the next durability barrier latches the tenant's
// engine degraded: ingest acks carry the degraded flag, IngestAll
// stops resending with ErrDegraded, and queries keep answering from
// the durable generation. Clearing the fault and calling Server.Heal
// resumes ingest — and the fixes acked while the disk was sick (parked
// in memory meanwhile) drain to disk, so no acked data is lost.
func TestDegradedModeEndToEnd(t *testing.T) {
	fs := vfs.NewFaultFS(7)
	srv, addr := startServer(t, Config{
		Dir:    t.TempDir(),
		Engine: engine.Config{Tolerance: 2, Shards: 1, MaxTrailKeys: 16},
		Log:    segmentlog.Options{FS: fs},
	})
	c, err := Dial(addr, "fleet")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	// coverage asserts the device's durable records span exactly the
	// acked track: first fix time through last fix time.
	coverage := func(dev string, keys []trajstore.GeoKey, ctx string) {
		t.Helper()
		recs, err := c.QueryTime(dev, 0, math.MaxUint32)
		if err != nil {
			t.Fatalf("%s: query %s: %v", ctx, dev, err)
		}
		if len(recs) == 0 {
			t.Fatalf("%s: %s has no durable records — acked fixes lost", ctx, dev)
		}
		lo, hi := recs[0].T0, recs[0].T1
		for _, r := range recs[1:] {
			if r.T0 < lo {
				lo = r.T0
			}
			if r.T1 > hi {
				hi = r.T1
			}
		}
		if lo != keys[0].T || hi != keys[len(keys)-1].T {
			t.Fatalf("%s: %s durable span [%d,%d], want [%d,%d]",
				ctx, dev, lo, hi, keys[0].T, keys[len(keys)-1].T)
		}
	}

	// Phase 1: healthy ingest, made durable by a flush barrier.
	trackA := track(0, 40)
	if _, err := c.IngestAll([]proto.DeviceBatch{{Device: "dev-a", Keys: trackA}}, 20); err != nil {
		t.Fatalf("healthy IngestAll: %v", err)
	}
	if err := c.Sync(true); err != nil {
		t.Fatalf("healthy Sync: %v", err)
	}
	coverage("dev-a", trackA, "healthy phase")

	// Phase 2: the disk fills. Batch B is small enough (< MaxTrailKeys
	// key points) to be accepted entirely into the in-memory session —
	// the acks are honest, nothing touched the disk yet — and the flush
	// barrier then forces its trail at the sick disk: ENOSPC is
	// terminal, so the engine parks the trail and latches degraded.
	fs.AddRule(vfs.Rule{Op: vfs.OpWrite, Fault: vfs.FaultENOSPC})
	fs.AddRule(vfs.Rule{Op: vfs.OpSync, Fault: vfs.FaultENOSPC})
	trackB := track(1, 10)
	if _, err := c.IngestAll([]proto.DeviceBatch{{Device: "dev-b", Keys: trackB}}, 20); err != nil {
		t.Fatalf("IngestAll into memory with sick disk: %v", err)
	}
	if err := c.Sync(true); err == nil {
		t.Fatal("Sync with sustained ENOSPC reported success")
	}

	// Degraded: acks carry the flag with nothing accepted, and
	// IngestAll gives up immediately instead of hammering the backend.
	probe := []proto.DeviceBatch{{Device: "dev-c", Keys: track(2, 8)}}
	ack, err := c.Ingest(probe)
	if err != nil {
		t.Fatalf("Ingest while degraded: %v", err)
	}
	if !ack.Degraded || ack.Accepted != 0 {
		t.Fatalf("degraded ack = %+v, want Degraded with 0 accepted", ack)
	}
	if _, err := c.IngestAll(probe, 20); !errors.Is(err, ErrDegraded) {
		t.Fatalf("IngestAll while degraded = %v, want ErrDegraded", err)
	}

	// Queries still answer from the durable generation.
	coverage("dev-a", trackA, "degraded phase")
	if recs, err := c.QueryWindow(-1, -1, 2, 2, 0, math.MaxUint32); err != nil || len(recs) == 0 {
		t.Fatalf("window query while degraded: %d records, err %v", len(recs), err)
	}

	// Phase 3: the operator clears the fault and heals. The engine
	// re-probes its persister (salvaging the poisoned segment), drains
	// the trails parked while degraded, and resumes taking fixes.
	fs.ClearRules()
	if err := srv.Heal(); err != nil {
		t.Fatalf("Heal after clearing the fault: %v", err)
	}
	trackD := track(3, 40)
	if _, err := c.IngestAll([]proto.DeviceBatch{{Device: "dev-d", Keys: trackD}}, 20); err != nil {
		t.Fatalf("IngestAll after heal: %v", err)
	}
	if err := c.Sync(true); err != nil {
		t.Fatalf("Sync after heal: %v", err)
	}

	// No lost acked fixes: every batch that was acked — including batch
	// B, acked while the disk was failing — is durable in full.
	coverage("dev-a", trackA, "healed")
	coverage("dev-b", trackB, "healed")
	coverage("dev-d", trackD, "healed")
}

// TestHealNoop: Heal on a healthy server (and on one with no tenants
// opened yet) is a no-op; on a shut-down server it reports closure.
func TestHealNoop(t *testing.T) {
	srv, addr := startServer(t, Config{Dir: t.TempDir(), Engine: engine.Config{Tolerance: 2}})
	if err := srv.Heal(); err != nil {
		t.Fatalf("Heal with no tenants: %v", err)
	}
	c, err := Dial(addr, "fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.IngestAll([]proto.DeviceBatch{{Device: "dev", Keys: track(0, 8)}}, 20); err != nil {
		t.Fatal(err)
	}
	if err := srv.Heal(); err != nil {
		t.Fatalf("Heal on a healthy tenant: %v", err)
	}
	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Heal(); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Heal after Shutdown = %v, want ErrServerClosed", err)
	}
}
