package server

import (
	"errors"
	"fmt"
	"net"
	"time"

	"github.com/trajcomp/bqs/internal/proto"
	"github.com/trajcomp/bqs/internal/trajstore"
)

// ErrDegraded reports a degraded ack from the server: its engine is in
// read-only mode after a terminal persist failure (full disk, corrupt
// log). Ingest is suspended — resending is futile until the operator
// clears the fault and the engine heals — but queries keep answering.
// Match with errors.Is on IngestAll's error.
var ErrDegraded = errors.New("server: backend degraded, ingest suspended")

// Client is a synchronous bqsd protocol client: one request in flight
// at a time, not safe for concurrent use. A device's fixes must flow
// through a single client (the engine orders a device's stream by
// arrival), but many clients may serve disjoint device sets.
type Client struct {
	conn net.Conn
	buf  []byte // frame read buffer, recycled across calls
	enc  []byte // frame write buffer, recycled across calls
	seq  uint64
	// Sleep substitutes the retry-after wait in IngestAll; nil means
	// time.Sleep. Tests compress it.
	Sleep func(time.Duration)
}

// Dial connects to a bqsd server and binds the connection to tenant.
func Dial(addr, tenant string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c, err := NewClient(conn, tenant)
	if err != nil {
		_ = conn.Close() // handshake failed; the Hello error is the story
		return nil, err
	}
	return c, nil
}

// NewClient performs the Hello handshake on an established connection.
// On error the connection is left to the caller to close.
func NewClient(conn net.Conn, tenant string) (*Client, error) {
	c := &Client{conn: conn}
	c.enc = proto.AppendHello(c.enc[:0], proto.Hello{Version: proto.Version, Tenant: tenant})
	if err := proto.WriteFrame(conn, proto.TypeHello, c.enc); err != nil {
		return nil, err
	}
	typ, payload, buf, err := proto.ReadFrame(conn, c.buf)
	if err != nil {
		return nil, err
	}
	c.buf = buf
	if typ == proto.TypeError {
		m, _ := proto.ParseError(payload)
		return nil, fmt.Errorf("server: %s", m.Err)
	}
	if typ != proto.TypeHelloAck {
		return nil, fmt.Errorf("server: unexpected handshake frame %#x", typ)
	}
	ack, err := proto.ParseHelloAck(payload)
	if err != nil {
		return nil, err
	}
	if ack.Err != "" {
		return nil, fmt.Errorf("server: %s", ack.Err)
	}
	return c, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one frame and reads the response, translating an
// in-band Error frame (which the server follows with a close).
func (c *Client) roundTrip(typ byte, payload []byte) (byte, []byte, error) {
	if err := proto.WriteFrame(c.conn, typ, payload); err != nil {
		return 0, nil, err
	}
	rtyp, rp, buf, err := proto.ReadFrame(c.conn, c.buf)
	if err != nil {
		return 0, nil, err
	}
	c.buf = buf
	if rtyp == proto.TypeError {
		m, _ := proto.ParseError(rp)
		return 0, nil, fmt.Errorf("server: %s", m.Err)
	}
	return rtyp, rp, nil
}

// Ingest sends one batch frame and returns the server's ack verbatim;
// the caller owns retrying rejected batches. An ack whose Err is set is
// returned with a nil error — fixes may still have been accepted, and
// the caller decides whether a sick backend stops the stream.
func (c *Client) Ingest(batches []proto.DeviceBatch) (proto.IngestAck, error) {
	c.seq++
	enc, err := proto.AppendIngest(c.enc[:0], proto.Ingest{Seq: c.seq, Batches: batches})
	if err != nil {
		return proto.IngestAck{}, err
	}
	c.enc = enc
	typ, payload, err := c.roundTrip(proto.TypeIngest, enc)
	if err != nil {
		return proto.IngestAck{}, err
	}
	if typ != proto.TypeIngestAck {
		return proto.IngestAck{}, fmt.Errorf("server: unexpected frame %#x", typ)
	}
	ack, err := proto.ParseIngestAck(payload)
	if err != nil {
		return proto.IngestAck{}, err
	}
	if ack.Seq != c.seq {
		return proto.IngestAck{}, fmt.Errorf("server: ack seq %d, want %d", ack.Seq, c.seq)
	}
	return ack, nil
}

// IngestAll sends batches and keeps resending backpressure-rejected
// ones, honoring the server's retry-after hint, until everything is
// accepted, the server reports a backend error, or maxRetries rounds
// of rejection pass. A degraded ack (the server's engine is in
// read-only mode — see engine.ErrDegraded) stops the resend loop
// immediately with an error matching ErrDegraded: retrying cannot
// succeed until the operator clears the fault. It returns the total
// fixes accepted.
func (c *Client) IngestAll(batches []proto.DeviceBatch, maxRetries int) (accepted uint64, err error) {
	if maxRetries <= 0 {
		maxRetries = 100
	}
	sleep := c.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	pending := batches
	for round := 0; ; round++ {
		ack, err := c.Ingest(pending)
		if err != nil {
			return accepted, err
		}
		accepted += ack.Accepted
		if ack.Degraded {
			return accepted, fmt.Errorf("%w: %s", ErrDegraded, ack.Err)
		}
		if ack.Err != "" {
			return accepted, fmt.Errorf("server: %s", ack.Err)
		}
		if len(ack.Rejected) == 0 {
			return accepted, nil
		}
		if round+1 >= maxRetries {
			return accepted, fmt.Errorf("server: %d batches still rejected after %d rounds", len(ack.Rejected), maxRetries)
		}
		retry := make([]proto.DeviceBatch, 0, len(ack.Rejected))
		for _, idx := range ack.Rejected {
			if int(idx) >= len(pending) {
				return accepted, errors.New("server: rejected index out of range")
			}
			retry = append(retry, pending[idx])
		}
		pending = retry
		sleep(time.Duration(ack.RetryAfterMillis) * time.Millisecond)
	}
}

// Sync runs the durability barrier; with flush, open compression
// sessions are finalized first so everything ingested becomes durable
// and queryable (at the cost of restarting those sessions).
func (c *Client) Sync(flush bool) error {
	c.seq++
	c.enc = proto.AppendSync(c.enc[:0], proto.Sync{Seq: c.seq, Flush: flush})
	typ, payload, err := c.roundTrip(proto.TypeSync, c.enc)
	if err != nil {
		return err
	}
	if typ != proto.TypeSyncAck {
		return fmt.Errorf("server: unexpected frame %#x", typ)
	}
	ack, err := proto.ParseSyncAck(payload)
	if err != nil {
		return err
	}
	if ack.Seq != c.seq {
		return fmt.Errorf("server: ack seq %d, want %d", ack.Seq, c.seq)
	}
	if ack.Err != "" {
		return fmt.Errorf("server: %s", ack.Err)
	}
	return nil
}

// QueryWindow returns every durable record with a segment intersecting
// the window: [minLon, maxLon] x [minLat, maxLat] degrees, [t0, t1]
// seconds.
func (c *Client) QueryWindow(minLon, minLat, maxLon, maxLat float64, t0, t1 uint32) ([]trajstore.PersistedRecord, error) {
	c.seq++
	c.enc = proto.AppendQueryWindow(c.enc[:0], proto.QueryWindow{
		Seq: c.seq, MinLon: minLon, MinLat: minLat, MaxLon: maxLon, MaxLat: maxLat, T0: t0, T1: t1,
	})
	return c.queryResp(proto.TypeQueryWindow)
}

// QueryTime returns one device's durable records overlapping [t0, t1].
func (c *Client) QueryTime(device string, t0, t1 uint32) ([]trajstore.PersistedRecord, error) {
	c.seq++
	c.enc = proto.AppendQueryTime(c.enc[:0], proto.QueryTime{Seq: c.seq, Device: device, T0: t0, T1: t1})
	return c.queryResp(proto.TypeQueryTime)
}

func (c *Client) queryResp(reqType byte) ([]trajstore.PersistedRecord, error) {
	typ, payload, err := c.roundTrip(reqType, c.enc)
	if err != nil {
		return nil, err
	}
	if typ != proto.TypeQueryResp {
		return nil, fmt.Errorf("server: unexpected frame %#x", typ)
	}
	resp, err := proto.ParseQueryResp(payload)
	if err != nil {
		return nil, err
	}
	if resp.Seq != c.seq {
		return nil, fmt.Errorf("server: resp seq %d, want %d", resp.Seq, c.seq)
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("server: %s", resp.Err)
	}
	return resp.Records, nil
}
