// The /metrics endpoint: every tenant's engine, queue, cache and
// segment-log counters rendered in the Prometheus text exposition
// format. The handler is plain text on purpose — no client library,
// no registry objects — because the server already has one source of
// truth for each number (engine.Stats, engine.QueueStats,
// segmentlog.Stats) and the scrape path should read those, not
// maintain a parallel set of instrument objects that can drift.
package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"github.com/trajcomp/bqs/internal/engine"
	"github.com/trajcomp/bqs/internal/trajstore/segmentlog"
)

// tenantMetrics is one tenant's scrape snapshot.
type tenantMetrics struct {
	name     string
	eng      engine.Stats
	queue    engine.QueueStats
	degraded bool
	log      segmentlog.Stats
}

// snapshotMetrics collects a scrape-time snapshot of every open
// tenant, sorted by name. Tenants still opening (or whose open failed)
// are skipped — they have no counters yet.
func (s *Server) snapshotMetrics() []tenantMetrics {
	s.mu.Lock()
	ts := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		ts = append(ts, t)
	}
	s.mu.Unlock()
	sort.Slice(ts, func(i, j int) bool { return ts[i].name < ts[j].name })
	out := make([]tenantMetrics, 0, len(ts))
	for _, t := range ts {
		if t.eng == nil {
			continue
		}
		out = append(out, tenantMetrics{
			name:     t.name,
			eng:      t.eng.Stats(),
			queue:    t.eng.QueueStats(),
			degraded: t.eng.Degraded(),
			log:      t.log.Stats(),
		})
	}
	return out
}

// metricFamily emits one family: HELP/TYPE header then a sample per
// tenant, labels escaped per the exposition format.
func metricFamily(b *strings.Builder, name, typ, help string, ts []tenantMetrics, value func(*tenantMetrics) interface{}) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	for i := range ts {
		esc := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(ts[i].name)
		fmt.Fprintf(b, "%s{tenant=\"%s\"} %v\n", name, esc, value(&ts[i]))
	}
}

// MetricsHandler serves the server's internals in the Prometheus text
// format: per tenant, the ingest counters (fixes, key points,
// rejections), session lifecycle, queue occupancy, persist/compact
// failure tallies and compaction reclaim, the read-side cache
// (hits/misses/evictions/size), and the segment log's shape
// (segments, records, bytes, generation). Scraping is safe at any
// time, including during Shutdown — each number is an atomic or
// mutex-guarded snapshot read.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ts := s.snapshotMetrics()
		var b strings.Builder
		f := func(name, typ, help string, value func(*tenantMetrics) interface{}) {
			metricFamily(&b, name, typ, help, ts, value)
		}
		f("bqs_ingest_fixes_total", "counter", "Fixes accepted by the engine.",
			func(t *tenantMetrics) interface{} { return t.eng.Fixes })
		f("bqs_ingest_keypoints_total", "counter", "Key points emitted by all sessions.",
			func(t *tenantMetrics) interface{} { return t.eng.KeyPoints })
		f("bqs_ingest_rejected_total", "counter", "Fixes refused by backpressure or degraded mode.",
			func(t *tenantMetrics) interface{} { return t.eng.Rejected })
		f("bqs_sessions_active", "gauge", "Device sessions currently open.",
			func(t *tenantMetrics) interface{} { return t.eng.ActiveSessions })
		f("bqs_sessions_opened_total", "counter", "Device sessions ever created.",
			func(t *tenantMetrics) interface{} { return t.eng.SessionsOpened })
		f("bqs_sessions_evicted_total", "counter", "Sessions closed by idle eviction.",
			func(t *tenantMetrics) interface{} { return t.eng.SessionsEvicted })
		f("bqs_persisted_trails_total", "counter", "Finalized trajectories handed to the persister.",
			func(t *tenantMetrics) interface{} { return t.eng.Persisted })
		f("bqs_parked_trails", "gauge", "Trajectories parked in memory by degraded mode, awaiting heal.",
			func(t *tenantMetrics) interface{} { return t.eng.ParkedTrails })
		f("bqs_persist_failures_total", "counter", "Failed persister append/sync attempts, retried ones included.",
			func(t *tenantMetrics) interface{} { return t.eng.PersistFailures })
		f("bqs_compact_failures_total", "counter", "Failed compaction passes.",
			func(t *tenantMetrics) interface{} { return t.eng.CompactFailures })
		f("bqs_compact_reclaimed_bytes", "counter", "Net disk bytes freed by published compactions.",
			func(t *tenantMetrics) interface{} { return t.eng.CompactReclaim })
		f("bqs_degraded", "gauge", "1 while the engine is in degraded read-only mode.",
			func(t *tenantMetrics) interface{} { return b2i(t.degraded) })
		f("bqs_queue_depth", "gauge", "Queued ingest batches, summed over shards.",
			func(t *tenantMetrics) interface{} {
				n := 0
				for _, l := range t.queue.Len {
					n += l
				}
				return n
			})
		f("bqs_queue_capacity", "gauge", "Per-shard ingest queue capacity in batches.",
			func(t *tenantMetrics) interface{} { return t.queue.Cap })
		f("bqs_queue_fullness", "gauge", "Worst shard queue occupancy fraction in [0, 1].",
			func(t *tenantMetrics) interface{} { return t.queue.Fullness() })
		f("bqs_cache_hits_total", "counter", "Read-cache hits (records served without decode).",
			func(t *tenantMetrics) interface{} { return t.eng.Cache.Hits })
		f("bqs_cache_misses_total", "counter", "Read-cache misses.",
			func(t *tenantMetrics) interface{} { return t.eng.Cache.Misses })
		f("bqs_cache_evictions_total", "counter", "Read-cache entries evicted by budget pressure.",
			func(t *tenantMetrics) interface{} { return t.eng.Cache.Evictions })
		f("bqs_cache_entries", "gauge", "Read-cache resident entries.",
			func(t *tenantMetrics) interface{} { return t.eng.Cache.Entries })
		f("bqs_cache_bytes", "gauge", "Read-cache resident bytes.",
			func(t *tenantMetrics) interface{} { return t.eng.Cache.Bytes })
		f("bqs_cache_capacity_bytes", "gauge", "Read-cache byte budget (0 when caching is off).",
			func(t *tenantMetrics) interface{} { return t.eng.Cache.Capacity })
		f("bqs_log_segments", "gauge", "Segment files across all shards.",
			func(t *tenantMetrics) interface{} { return t.log.Segments })
		f("bqs_log_records", "gauge", "Records indexed in the segment log.",
			func(t *tenantMetrics) interface{} { return t.log.Records })
		f("bqs_log_devices", "gauge", "Distinct device IDs in the segment log.",
			func(t *tenantMetrics) interface{} { return t.log.Devices })
		f("bqs_log_bytes", "gauge", "Valid bytes on disk, headers included.",
			func(t *tenantMetrics) interface{} { return t.log.Bytes })
		f("bqs_log_generation", "gauge", "Manifest generation, summed over shards.",
			func(t *tenantMetrics) interface{} { return t.log.Gen })
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(b.String())) // a failed scrape write has no one left to report to
	})
}

func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}
