package server

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/trajcomp/bqs/internal/core"
	"github.com/trajcomp/bqs/internal/engine"
	"github.com/trajcomp/bqs/internal/proto"
	"github.com/trajcomp/bqs/internal/trajstore"
	"github.com/trajcomp/bqs/internal/trajstore/segmentlog"
)

func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Shutdown() })
	return s, ln.Addr().String()
}

// quant snaps a degree coordinate to the wire format's 1e-7 grid, so a
// key fed to the direct engine matches what the server decodes.
func quant(v float64) float64 { return math.Round(v*1e7) / 1e7 }

// track builds a zigzag device trajectory — ~550 m forward per fix
// with a ~400 m lateral flip — so at small tolerances every fix is a
// key point (a straight line would compress to its endpoints and never
// grow a persistable trail). The device index offsets the path so
// devices do not overlap.
func track(dev, n int) []trajstore.GeoKey {
	keys := make([]trajstore.GeoKey, n)
	base := float64(dev) * 0.1
	for i := range keys {
		keys[i] = trajstore.GeoKey{
			Lat: quant(base + float64(i%2)*0.004),
			Lon: quant(base + float64(i)*0.0055),
			T:   1000 + uint32(i)*30,
		}
	}
	return keys
}

// toFixes converts wire keys to engine fixes exactly as the server
// does.
func toFixes(device string, keys []trajstore.GeoKey, mPerDeg float64) []engine.Fix {
	fixes := make([]engine.Fix, len(keys))
	for i, k := range keys {
		fixes[i] = engine.Fix{Device: device, Point: core.Point{
			X: k.Lon * mPerDeg, Y: k.Lat * mPerDeg, T: float64(k.T),
		}}
	}
	return fixes
}

// TestLoopbackDifferential is the acceptance test: fixes streamed
// through the server must land in the tenant's segment log byte-
// identical — at wire resolution — to the same fixes pushed through
// Engine.Ingest directly.
func TestLoopbackDifferential(t *testing.T) {
	ecfg := engine.Config{Tolerance: 2, Shards: 2, MaxTrailKeys: 16}
	_, addr := startServer(t, Config{Dir: t.TempDir(), Engine: ecfg})
	c, err := Dial(addr, "fleet")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	const devices, perDevice, chunks = 6, 120, 3
	tracks := make([][]trajstore.GeoKey, devices)
	for d := range tracks {
		tracks[d] = track(d, perDevice)
	}

	// Direct path: same engine config persisting into its own log.
	lg, err := segmentlog.OpenSharded(t.TempDir(), ecfg.Shards, segmentlog.Options{})
	if err != nil {
		t.Fatalf("open direct log: %v", err)
	}
	dcfg := ecfg
	dcfg.Shards = lg.NumShards()
	dcfg.Persister = lg
	eng, err := engine.New(dcfg)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	defer eng.Close()

	// Stream both paths in the same chunked order.
	per := perDevice / chunks
	for chunk := 0; chunk < chunks; chunk++ {
		batches := make([]proto.DeviceBatch, 0, devices)
		var fixes []engine.Fix
		for d := range tracks {
			part := tracks[d][chunk*per : (chunk+1)*per]
			dev := fmt.Sprintf("dev-%03d", d)
			batches = append(batches, proto.DeviceBatch{Device: dev, Keys: part})
			fixes = append(fixes, toFixes(dev, part, 1e5)...)
		}
		if _, err := c.IngestAll(batches, 20); err != nil {
			t.Fatalf("chunk %d: IngestAll: %v", chunk, err)
		}
		if err := eng.Ingest(fixes); err != nil {
			t.Fatalf("chunk %d: direct Ingest: %v", chunk, err)
		}
	}
	if err := c.Sync(true); err != nil {
		t.Fatalf("client Sync(flush): %v", err)
	}
	if err := eng.FlushSessions(); err != nil {
		t.Fatalf("direct FlushSessions: %v", err)
	}
	if err := eng.Sync(); err != nil {
		t.Fatalf("direct Sync: %v", err)
	}

	for d := 0; d < devices; d++ {
		dev := fmt.Sprintf("dev-%03d", d)
		sRecs, err := c.QueryTime(dev, 0, math.MaxUint32)
		if err != nil {
			t.Fatalf("%s: server QueryTime: %v", dev, err)
		}
		dRecs, err := lg.Query(dev, 0, math.MaxUint32)
		if err != nil {
			t.Fatalf("%s: direct Query: %v", dev, err)
		}
		assertRecordsIdentical(t, dev, sRecs, dRecs)
	}

	// Window queries must agree too (both paths prune + decode the
	// same persisted bytes).
	sW, err := c.QueryWindow(-0.5, -0.5, 0.25, 0.25, 0, math.MaxUint32)
	if err != nil {
		t.Fatalf("server QueryWindow: %v", err)
	}
	dW, err := lg.QueryWindow(-0.5, -0.5, 0.25, 0.25, 0, math.MaxUint32)
	if err != nil {
		t.Fatalf("direct QueryWindow: %v", err)
	}
	if len(sW) == 0 {
		t.Fatal("window query returned nothing; widen the test window")
	}
	byDev := func(recs []trajstore.PersistedRecord) map[string][]trajstore.PersistedRecord {
		m := make(map[string][]trajstore.PersistedRecord)
		for _, r := range recs {
			m[r.Device] = append(m[r.Device], r)
		}
		return m
	}
	sM, dM := byDev(sW), byDev(dW)
	if len(sM) != len(dM) {
		t.Fatalf("window devices differ: server %d, direct %d", len(sM), len(dM))
	}
	for dev, sr := range sM {
		assertRecordsIdentical(t, "window:"+dev, sr, dM[dev])
	}
}

func assertRecordsIdentical(t *testing.T, label string, got, want []trajstore.PersistedRecord) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d records via server, %d direct", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.T0 != w.T0 || g.T1 != w.T1 {
			t.Fatalf("%s record %d: time span [%d,%d] vs [%d,%d]", label, i, g.T0, g.T1, w.T0, w.T1)
		}
		gb, err1 := trajstore.DeltaEncode(g.Keys)
		wb, err2 := trajstore.DeltaEncode(w.Keys)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s record %d: re-encode: %v, %v", label, i, err1, err2)
		}
		if !bytes.Equal(gb, wb) {
			t.Fatalf("%s record %d: wire bytes differ (%d vs %d keys)", label, i, len(g.Keys), len(w.Keys))
		}
	}
}

// wedgeLog wraps the real sharded log with a parkable Append, driving
// the server's persist path into the stuck-disk regime.
type wedgeLog struct {
	tenantLog
	mu      sync.Mutex
	wedged  chan struct{} // nil = pass through; non-nil = park until closed
	entered chan struct{} // signaled once per parked Append
	err     error         // returned by Append after release
}

func (w *wedgeLog) Append(device string, keys []trajstore.GeoKey) error {
	w.mu.Lock()
	wedged, entered, aerr := w.wedged, w.entered, w.err
	w.mu.Unlock()
	if wedged != nil {
		if entered != nil {
			select {
			case entered <- struct{}{}:
			default:
			}
		}
		<-wedged
		w.mu.Lock()
		aerr = w.err
		w.mu.Unlock()
	}
	if aerr != nil {
		return aerr
	}
	return w.tenantLog.Append(device, keys)
}

func (w *wedgeLog) releaseWith(err error) {
	w.mu.Lock()
	wedged := w.wedged
	w.wedged, w.err = nil, err
	w.mu.Unlock()
	if wedged != nil {
		close(wedged)
	}
}

// hookOpenLog reroutes tenant opens through fn for the test's duration.
func hookOpenLog(t *testing.T, fn func(tenantLog) tenantLog) {
	t.Helper()
	orig := openLog
	openLog = func(dir string, shards int, opts segmentlog.Options) (tenantLog, error) {
		lg, err := orig(dir, shards, opts)
		if err != nil {
			return nil, err
		}
		return fn(lg), nil
	}
	t.Cleanup(func() { openLog = orig })
}

var errDiskFire = errors.New("append: disk on fire")

// TestOverloadBackpressureAndDrain is the second acceptance test:
// under a wedged persister, ingest frames are rejected with a
// retry-after hint (never buffered), and Shutdown's drain completes —
// returning the latched error — once the wedge resolves.
func TestOverloadBackpressureAndDrain(t *testing.T) {
	wl := &wedgeLog{wedged: make(chan struct{}), entered: make(chan struct{}, 1)}
	hookOpenLog(t, func(inner tenantLog) tenantLog {
		wl.tenantLog = inner
		return wl
	})
	srv, addr := startServer(t, Config{
		Dir: t.TempDir(),
		// One shard, queue depth 1, chunk at 2 trail keys: the first
		// batch parks the worker inside Append, the second fills the
		// queue, the third must bounce.
		Engine:       engine.Config{Tolerance: 1, Shards: 1, QueueDepth: 1, MaxTrailKeys: 2},
		RetryAfter:   20 * time.Millisecond,
		DrainTimeout: 200 * time.Millisecond,
	})
	c, err := Dial(addr, "hot")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	// 12 jumpy fixes per frame: plenty of confirmed key points, so the
	// 2-key trail cap forces a persist while the batch is processed.
	batch := func(int) []proto.DeviceBatch {
		return []proto.DeviceBatch{{Device: "d0", Keys: track(0, 12)}}
	}
	if ack, err := c.Ingest(batch(0)); err != nil || len(ack.Rejected) != 0 {
		t.Fatalf("batch 0: ack %+v, err %v", ack, err)
	}
	<-wl.entered // worker is parked inside Append now
	if ack, err := c.Ingest(batch(1)); err != nil || len(ack.Rejected) != 0 {
		t.Fatalf("batch 1 (fills queue): ack %+v, err %v", ack, err)
	}

	// Everything past the full queue must bounce with a hint, forever,
	// without growing any buffer.
	for i := 2; i < 6; i++ {
		ack, err := c.Ingest(batch(i))
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if ack.Accepted != 0 || len(ack.Rejected) != 1 || ack.Rejected[0] != 0 {
			t.Fatalf("batch %d: want whole-batch rejection, got %+v", i, ack)
		}
		if ack.RetryAfterMillis < 20 {
			t.Fatalf("batch %d: RetryAfterMillis = %d, want >= base 20", i, ack.RetryAfterMillis)
		}
	}

	// Drain begins while the persister is still wedged…
	shut := make(chan error, 1)
	go func() { shut <- srv.Shutdown() }()
	select {
	case err := <-shut:
		t.Fatalf("Shutdown returned %v while persister wedged", err)
	case <-time.After(50 * time.Millisecond):
	}
	// …and completes once the disk resolves (here: to a hard error),
	// surfacing that error from the drain.
	wl.releaseWith(errDiskFire)
	select {
	case err := <-shut:
		if err == nil || !strings.Contains(err.Error(), errDiskFire.Error()) {
			t.Fatalf("Shutdown error = %v, want it to carry %v", err, errDiskFire)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not complete after wedge released")
	}
}

// TestPersistErrorSurfacesInAck covers the mid-batch latched error: a
// failing backend must show up in ingest acks (and Sync) without
// waiting for Close.
func TestPersistErrorSurfacesInAck(t *testing.T) {
	wl := &wedgeLog{err: errDiskFire}
	hookOpenLog(t, func(inner tenantLog) tenantLog {
		wl.tenantLog = inner
		return wl
	})
	_, addr := startServer(t, Config{
		Dir:    t.TempDir(),
		Engine: engine.Config{Tolerance: 1, Shards: 1, MaxTrailKeys: 2},
	})
	c, err := Dial(addr, "sick")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	// The worker persists asynchronously; keep feeding small batches
	// until the latched error propagates into an ack.
	deadline := time.After(5 * time.Second)
	for i := 0; ; i++ {
		ack, err := c.Ingest([]proto.DeviceBatch{{Device: "d0", Keys: track(0, 12)}})
		if err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
		if ack.Err != "" {
			if !strings.Contains(ack.Err, errDiskFire.Error()) {
				t.Fatalf("ack.Err = %q, want it to carry %v", ack.Err, errDiskFire)
			}
			// Either the error latched after this batch was accepted (it
			// rides along in ack.Err) or the engine already degraded and
			// rejected the batch whole — then the ack must say so.
			if ack.Accepted == 0 && !ack.Degraded {
				t.Fatalf("ingest %d: empty non-degraded error ack, got %+v", i, ack)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("persist error never surfaced in an ack")
		case <-time.After(2 * time.Millisecond):
		}
	}
	if err := c.Sync(false); err == nil || !strings.Contains(err.Error(), errDiskFire.Error()) {
		t.Fatalf("Sync error = %v, want it to carry %v", err, errDiskFire)
	}
	// The generic disk error is terminal, so the engine is degraded by
	// now: the next batch is rejected whole with the flag set, telling
	// clients to stop resending.
	ack, err := c.Ingest([]proto.DeviceBatch{{Device: "d0", Keys: track(0, 12)}})
	if err != nil {
		t.Fatalf("ingest after degrade: %v", err)
	}
	if !ack.Degraded || ack.Accepted != 0 {
		t.Fatalf("ack after degrade = %+v, want Degraded with nothing accepted", ack)
	}
	if _, err := c.IngestAll([]proto.DeviceBatch{{Device: "d0", Keys: track(0, 12)}}, 3); !errors.Is(err, ErrDegraded) {
		t.Fatalf("IngestAll while degraded = %v, want ErrDegraded", err)
	}
}

func TestTenantIsolationAndValidation(t *testing.T) {
	dir := t.TempDir()
	_, addr := startServer(t, Config{Dir: dir, Engine: engine.Config{Tolerance: 2, Shards: 1}})

	ca, err := Dial(addr, "alpha")
	if err != nil {
		t.Fatalf("dial alpha: %v", err)
	}
	defer ca.Close()
	cb, err := Dial(addr, "beta")
	if err != nil {
		t.Fatalf("dial beta: %v", err)
	}
	defer cb.Close()

	if _, err := ca.IngestAll([]proto.DeviceBatch{{Device: "shared-id", Keys: track(1, 30)}}, 10); err != nil {
		t.Fatalf("alpha ingest: %v", err)
	}
	if err := ca.Sync(true); err != nil {
		t.Fatalf("alpha sync: %v", err)
	}
	recs, err := ca.QueryTime("shared-id", 0, math.MaxUint32)
	if err != nil || len(recs) == 0 {
		t.Fatalf("alpha sees %d records, err %v; want >= 1", len(recs), err)
	}
	recs, err = cb.QueryTime("shared-id", 0, math.MaxUint32)
	if err != nil || len(recs) != 0 {
		t.Fatalf("beta sees %d records, err %v; want 0 (tenant bleed)", len(recs), err)
	}

	// Tenant state is real directories, one per namespace.
	for _, name := range []string{"alpha", "beta"} {
		if _, err := os.Stat(filepath.Join(dir, name, "SHARDS")); err != nil {
			t.Fatalf("tenant %q has no sharded log: %v", name, err)
		}
	}

	// Traversal and junk names never reach the filesystem.
	for _, bad := range []string{"", ".", "..", "../evil", "a/b", ".hidden", strings.Repeat("x", 65)} {
		if _, err := Dial(addr, bad); err == nil {
			t.Fatalf("tenant %q accepted", bad)
		}
	}
	if _, err := os.Stat(filepath.Join(filepath.Dir(dir), "evil")); !os.IsNotExist(err) {
		t.Fatalf("traversal escaped the data dir: %v", err)
	}
}

func TestHelloVersionMismatch(t *testing.T) {
	_, addr := startServer(t, Config{Dir: t.TempDir(), Engine: engine.Config{Tolerance: 2, Shards: 1}})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	p := proto.AppendHello(nil, proto.Hello{Version: proto.Version + 9, Tenant: "x"})
	if err := proto.WriteFrame(conn, proto.TypeHello, p); err != nil {
		t.Fatalf("write: %v", err)
	}
	typ, payload, _, err := proto.ReadFrame(conn, nil)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if typ != proto.TypeHelloAck {
		t.Fatalf("frame type %#x, want HelloAck", typ)
	}
	ack, err := proto.ParseHelloAck(payload)
	if err != nil || ack.Err == "" {
		t.Fatalf("ack %+v, err %v; want version rejection", ack, err)
	}
}

func TestProtocolViolationGetsErrorFrame(t *testing.T) {
	_, addr := startServer(t, Config{Dir: t.TempDir(), Engine: engine.Config{Tolerance: 2, Shards: 1}})
	c, err := Dial(addr, "x")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	// A server-to-client frame type from the client is a violation.
	if err := proto.WriteFrame(c.conn, proto.TypeHelloAck, nil); err != nil {
		t.Fatalf("write: %v", err)
	}
	typ, payload, _, err := proto.ReadFrame(c.conn, nil)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if typ != proto.TypeError {
		t.Fatalf("frame type %#x, want Error", typ)
	}
	if m, err := proto.ParseError(payload); err != nil || m.Err == "" {
		t.Fatalf("error frame %+v, %v", m, err)
	}
}

// TestServeAfterShutdown pins the ErrServerClosed contract.
func TestServeAfterShutdown(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Engine: engine.Config{Tolerance: 1}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	if err := s.Serve(ln); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve after Shutdown = %v, want ErrServerClosed", err)
	}
}

// BenchmarkServerIngestLoopback measures the full wire path: encode,
// TCP loopback, decode, TryIngest. SetBytes follows the repo's
// convention of 24 bytes per fix.
func BenchmarkServerIngestLoopback(b *testing.B) {
	dir := b.TempDir()
	s, err := New(Config{Dir: dir, Engine: engine.Config{Tolerance: 2, Shards: 1, QueueDepth: 4096}})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatalf("listen: %v", err)
	}
	go s.Serve(ln)
	defer s.Shutdown()
	c, err := Dial(ln.Addr().String(), "bench")
	if err != nil {
		b.Fatalf("dial: %v", err)
	}
	defer c.Close()

	const devices, perDevice = 16, 64
	batches := make([]proto.DeviceBatch, devices)
	for d := range batches {
		batches[d] = proto.DeviceBatch{Device: fmt.Sprintf("dev-%03d", d), Keys: track(d, perDevice)}
	}
	b.SetBytes(int64(devices * perDevice * 24))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.IngestAll(batches, 50); err != nil {
			b.Fatalf("IngestAll: %v", err)
		}
	}
	b.StopTimer()
	if err := c.Sync(false); err != nil {
		b.Fatalf("Sync: %v", err)
	}
}
