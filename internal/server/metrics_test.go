package server

import (
	"fmt"
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"github.com/trajcomp/bqs/internal/engine"
	"github.com/trajcomp/bqs/internal/proto"
	"github.com/trajcomp/bqs/internal/trajstore/segmentlog"
)

// scrape GETs the metrics handler and returns the exposition body.
func scrape(t *testing.T, s *Server) string {
	t.Helper()
	rec := httptest.NewRecorder()
	s.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("metrics scrape: HTTP %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	return rec.Body.String()
}

// metricValue extracts one sample (by family name and tenant label)
// from an exposition body.
func metricValue(t *testing.T, body, name, tenant string) float64 {
	t.Helper()
	prefix := fmt.Sprintf("%s{tenant=%q} ", name, tenant)
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, prefix) {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, prefix), 64)
			if err != nil {
				t.Fatalf("unparsable sample %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("no sample %s for tenant %q in scrape:\n%s", name, tenant, body)
	return 0
}

// TestMetricsEndpoint is the integration test of the scrape path: after
// real ingest over the wire and a warmed-up window query, /metrics must
// report nonzero ingest, log and cache counters for the tenant — and an
// empty server must scrape cleanly with headers only.
func TestMetricsEndpoint(t *testing.T) {
	srv, addr := startServer(t, Config{
		Dir:    t.TempDir(),
		Engine: engine.Config{Tolerance: 2, Shards: 2, MaxTrailKeys: 16},
		Log:    segmentlog.Options{CacheBytes: 1 << 20},
	})

	// Before any tenant connects: headers render, no samples, no panic.
	if body := scrape(t, srv); strings.Contains(body, "tenant=") {
		t.Fatalf("empty server scrape has tenant samples:\n%s", body)
	}

	c, err := Dial(addr, "fleet")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	const devices, perDevice = 4, 90
	batches := make([]proto.DeviceBatch, 0, devices)
	for d := 0; d < devices; d++ {
		batches = append(batches, proto.DeviceBatch{Device: fmt.Sprintf("dev-%03d", d), Keys: track(d, perDevice)})
	}
	if _, err := c.IngestAll(batches, 20); err != nil {
		t.Fatalf("IngestAll: %v", err)
	}
	if err := c.Sync(true); err != nil { // flush sessions to the log
		t.Fatalf("Sync: %v", err)
	}
	// Two identical window queries: the first populates the read cache,
	// the second hits it.
	for i := 0; i < 2; i++ {
		if _, err := c.QueryWindow(-0.5, -0.5, 0.5, 0.5, 0, math.MaxUint32); err != nil {
			t.Fatalf("QueryWindow %d: %v", i, err)
		}
	}

	body := scrape(t, srv)
	for _, m := range []string{
		"bqs_ingest_fixes_total",
		"bqs_ingest_keypoints_total",
		"bqs_persisted_trails_total",
		"bqs_log_records",
		"bqs_log_bytes",
		"bqs_cache_capacity_bytes",
		"bqs_cache_misses_total",
		"bqs_cache_hits_total",
	} {
		if v := metricValue(t, body, m, "fleet"); v <= 0 {
			t.Errorf("%s = %v, want > 0", m, v)
		}
	}
	if v := metricValue(t, body, "bqs_ingest_fixes_total", "fleet"); v != devices*perDevice {
		t.Errorf("bqs_ingest_fixes_total = %v, want %d", v, devices*perDevice)
	}
	if v := metricValue(t, body, "bqs_degraded", "fleet"); v != 0 {
		t.Errorf("bqs_degraded = %v, want 0", v)
	}
	// Counters only move forward across scrapes.
	if _, err := c.QueryWindow(-0.5, -0.5, 0.5, 0.5, 0, math.MaxUint32); err != nil {
		t.Fatalf("QueryWindow: %v", err)
	}
	body2 := scrape(t, srv)
	if h1, h2 := metricValue(t, body, "bqs_cache_hits_total", "fleet"), metricValue(t, body2, "bqs_cache_hits_total", "fleet"); h2 <= h1 {
		t.Errorf("cache hits did not advance across scrapes: %v -> %v", h1, h2)
	}
}

// TestMetricsLabelEscaping: the family renderer escapes
// exposition-hostile label characters. Tenant-name validation makes
// these unreachable over the wire today, but the renderer must not
// depend on that invariant staying true.
func TestMetricsLabelEscaping(t *testing.T) {
	var b strings.Builder
	ts := []tenantMetrics{{name: "we\"ird\\ten\nant"}}
	metricFamily(&b, "bqs_test_total", "counter", "A test family.", ts,
		func(*tenantMetrics) interface{} { return 7 })
	want := `bqs_test_total{tenant="we\"ird\\ten\nant"} 7`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaped sample %q missing from:\n%s", want, b.String())
	}
}
