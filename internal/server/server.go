// Package server puts the durable sharded ingestion engine behind a
// TCP listener speaking the proto frame protocol: batched fix frames
// in, ack/reject frames out, plus spatio-temporal window and per-device
// time-range queries answered from the segment log.
//
// Each tenant named in a connection's Hello maps to its own engine and
// sharded-log directory under Config.Dir, opened lazily on first use
// and flock-guarded by the log itself. Ingest uses the engine's
// non-blocking TryIngest: a device batch that lands on a full shard
// queue is rejected in the ack with a retry-after hint — the server
// never buffers rejected fixes and never blocks a connection goroutine
// on a wedged persister, so accept/drain liveness does not depend on
// disk health.
package server

import (
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"

	"github.com/trajcomp/bqs/internal/core"
	"github.com/trajcomp/bqs/internal/engine"
	"github.com/trajcomp/bqs/internal/proto"
	"github.com/trajcomp/bqs/internal/trajstore"
	"github.com/trajcomp/bqs/internal/trajstore/segmentlog"
)

// ErrServerClosed is returned by Serve after Shutdown.
var ErrServerClosed = errors.New("server: closed")

const (
	// DefaultRetryAfter is the base backpressure retry hint; the hint
	// scales up to 2x with the worst shard queue's occupancy.
	DefaultRetryAfter = 50 * time.Millisecond
	// DefaultDrainTimeout bounds how long Shutdown waits for in-flight
	// connections before force-closing them.
	DefaultDrainTimeout = 10 * time.Second
)

// tenantName admits one path component: no separators, no dot-prefixed
// names (which also excludes "." and ".."), bounded length.
var tenantName = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

// Config parameterizes a Server.
type Config struct {
	// Dir is the root data directory; tenant <name> lives in Dir/<name>.
	Dir string
	// Engine is the per-tenant engine template. Persister and Shards
	// are overridden per tenant (the log's persisted shard count is
	// authoritative); everything else applies as-is.
	Engine engine.Config
	// Log is the per-tenant segment-log options template.
	Log segmentlog.Options
	// RetryAfter is the base retry hint attached to backpressure
	// rejections. Default DefaultRetryAfter.
	RetryAfter time.Duration
	// DrainTimeout bounds Shutdown's wait for in-flight connections.
	// Default DefaultDrainTimeout.
	DrainTimeout time.Duration
}

// tenantLog is the slice of segmentlog.ShardedLog the server consumes;
// tests substitute it via openLog to wedge persistence.
type tenantLog interface {
	trajstore.Persister
	NumShards() int
	Query(device string, t0, t1 uint32) ([]trajstore.PersistedRecord, error)
	QueryWindow(minX, minY, maxX, maxY float64, t0, t1 uint32) ([]trajstore.PersistedRecord, error)
	CompactNow() error
	Stats() segmentlog.Stats
}

// openLog is the tenant-storage constructor; a test hook.
var openLog = func(dir string, shards int, opts segmentlog.Options) (tenantLog, error) {
	return segmentlog.OpenSharded(dir, shards, opts)
}

// tenant is one namespace: engine + log, opened at most once.
type tenant struct {
	name string
	once sync.Once
	eng  *engine.Engine
	log  tenantLog
	err  error
}

// Server serves the bqsd protocol over a listener.
type Server struct {
	cfg     Config
	mPerDeg float64

	mu      sync.Mutex
	tenants map[string]*tenant
	conns   map[net.Conn]struct{}
	ln      net.Listener
	closed  bool
	closing chan struct{}
	wg      sync.WaitGroup
}

// New validates cfg and builds a Server. The engine template must carry
// a positive Tolerance — failing here beats failing on every Hello.
func New(cfg Config) (*Server, error) {
	if cfg.Dir == "" {
		return nil, errors.New("server: Config.Dir is required")
	}
	if !(cfg.Engine.Tolerance > 0) {
		return nil, errors.New("server: Config.Engine.Tolerance must be positive")
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	m := cfg.Engine.MetersPerDegree
	if m == 0 {
		m = 1e5 // mirror the engine's default so wire→metric inverts persist exactly
	}
	return &Server{
		cfg:     cfg,
		mPerDeg: m,
		tenants: make(map[string]*tenant),
		conns:   make(map[net.Conn]struct{}),
		closing: make(chan struct{}),
	}, nil
}

// Serve accepts connections on ln until Shutdown or a listener error.
// After Shutdown it returns nil.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close() // server already shut down; nothing was served
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.closing:
				return nil
			default:
				return err
			}
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close() // raced with Shutdown; nothing was written
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// tenant returns the namespace for name, opening engine + log on first
// use. The open runs outside s.mu (directory recovery can be slow);
// concurrent Hellos for the same tenant serialize on the tenant's once.
func (s *Server) tenant(name string) (*tenant, error) {
	if !tenantName.MatchString(name) {
		return nil, fmt.Errorf("server: invalid tenant name %q", name)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrServerClosed
	}
	t := s.tenants[name]
	if t == nil {
		t = &tenant{name: name}
		s.tenants[name] = t
	}
	s.mu.Unlock()
	t.once.Do(func() { t.open(s) })
	return t, t.err
}

func (t *tenant) open(s *Server) {
	lg, err := openLog(filepath.Join(s.cfg.Dir, t.name), s.cfg.Engine.Shards, s.cfg.Log)
	if err != nil {
		t.err = fmt.Errorf("server: open tenant %q: %w", t.name, err)
		return
	}
	ec := s.cfg.Engine
	ec.Shards = lg.NumShards() // the log's persisted count is authoritative
	ec.Persister = lg
	eng, err := engine.New(ec)
	if err != nil {
		_ = lg.Close() // engine construction failed; nothing was appended
		t.err = fmt.Errorf("server: engine for tenant %q: %w", t.name, err)
		return
	}
	t.eng, t.log = eng, lg
}

// retryMillis derives the backpressure hint: the base interval, scaled
// up to 2x by the worst shard queue's occupancy so a nearly-drained
// queue invites a quick retry and a pinned one backs clients off.
func (s *Server) retryMillis(eng *engine.Engine) uint32 {
	d := s.cfg.RetryAfter
	d += time.Duration(float64(d) * eng.QueueStats().Fullness())
	ms := d.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return uint32(ms)
}

// Shutdown drains and closes the server: stop accepting, abort idle
// connection reads, wait up to DrainTimeout for handlers, then flush
// sessions, sync, run a final compaction and close every tenant. Safe
// to call once; later calls return nil immediately.
func (s *Server) Shutdown() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.closing)
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if ln != nil {
		_ = ln.Close() // listeners carry no buffered writes
	}
	// Unpark readers waiting for the next frame; a response already
	// being written still goes out (the deadline only covers reads).
	for _, c := range conns {
		c.SetReadDeadline(time.Now()) //bqslint:ignore clockinject the deadline is compared by the kernel, not replayed by a test; the reader kick genuinely wants the wall clock
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		s.mu.Lock()
		for c := range s.conns {
			_ = c.Close() // drain timed out; force-drop the stragglers
		}
		s.mu.Unlock()
		<-done
	}

	// Tenants close in name order for deterministic error joining.
	s.mu.Lock()
	ts := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		ts = append(ts, t)
	}
	s.mu.Unlock()
	sort.Slice(ts, func(i, j int) bool { return ts[i].name < ts[j].name })
	var errs []error
	for _, t := range ts {
		if t.eng == nil {
			continue
		}
		fail := func(op string, err error) {
			if err != nil {
				errs = append(errs, fmt.Errorf("tenant %q: %s: %w", t.name, op, err))
			}
		}
		fail("flush", t.eng.FlushSessions())
		fail("sync", t.eng.Sync())
		fail("compact", t.eng.CompactNow())
		fail("close", t.eng.Close())
	}
	return errors.Join(errs...)
}

// Heal re-arms ingestion on every open tenant whose engine latched
// degraded mode (see engine.Heal): the operator clears the underlying
// fault — frees disk space, remounts the volume — then calls Heal, and
// each engine re-probes its persister, drains the trajectories parked
// while degraded, and resumes accepting fixes. Tenants that were never
// degraded are no-ops. Per-tenant failures are joined; a tenant whose
// persister still fails stays degraded and can be healed again later.
func (s *Server) Heal() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	ts := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		ts = append(ts, t)
	}
	s.mu.Unlock()
	sort.Slice(ts, func(i, j int) bool { return ts[i].name < ts[j].name })
	var errs []error
	for _, t := range ts {
		if t.eng == nil {
			continue
		}
		if err := t.eng.Heal(); err != nil {
			errs = append(errs, fmt.Errorf("tenant %q: heal: %w", t.name, err))
		}
	}
	return errors.Join(errs...)
}

// handleConn owns one connection: Hello handshake, then a strict
// request/response loop. Any protocol violation gets an Error frame and
// the connection is dropped — resynchronizing a byte stream after a
// framing error is guesswork.
func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		_ = conn.Close() // responses are flushed per-frame before this runs
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()

	var buf, out []byte
	typ, payload, buf, err := proto.ReadFrame(conn, buf)
	if err != nil {
		return
	}
	if typ != proto.TypeHello {
		s.sendError(conn, "expected Hello")
		return
	}
	h, err := proto.ParseHello(payload)
	if err != nil {
		s.sendError(conn, err.Error())
		return
	}
	ack := proto.HelloAck{Version: proto.Version}
	var tn *tenant
	if h.Version != proto.Version {
		ack.Err = fmt.Sprintf("unsupported protocol version %d (want %d)", h.Version, proto.Version)
	} else if tn, err = s.tenant(h.Tenant); err != nil {
		ack.Err = err.Error()
	}
	if err := proto.WriteFrame(conn, proto.TypeHelloAck, proto.AppendHelloAck(out[:0], ack)); err != nil || ack.Err != "" {
		return
	}

	var fixes []engine.Fix
	for {
		typ, payload, buf, err = proto.ReadFrame(conn, buf)
		if err != nil {
			return // EOF, drain deadline, or garbage framing — all terminal
		}
		switch typ {
		case proto.TypeIngest:
			m, perr := proto.ParseIngest(payload)
			if perr != nil {
				s.sendError(conn, perr.Error())
				return
			}
			ack := s.ingest(tn, m, &fixes)
			out = proto.AppendIngestAck(out[:0], ack)
			if err := proto.WriteFrame(conn, proto.TypeIngestAck, out); err != nil {
				return
			}
		case proto.TypeSync:
			m, perr := proto.ParseSync(payload)
			if perr != nil {
				s.sendError(conn, perr.Error())
				return
			}
			ack := proto.SyncAck{Seq: m.Seq}
			serr := error(nil)
			if m.Flush {
				serr = tn.eng.FlushSessions()
			}
			if serr == nil {
				serr = tn.eng.Sync()
			}
			if serr != nil {
				ack.Err = serr.Error()
			}
			out = proto.AppendSyncAck(out[:0], ack)
			if err := proto.WriteFrame(conn, proto.TypeSyncAck, out); err != nil {
				return
			}
		case proto.TypeQueryWindow:
			q, perr := proto.ParseQueryWindow(payload)
			if perr != nil {
				s.sendError(conn, perr.Error())
				return
			}
			recs, qerr := tn.log.QueryWindow(q.MinLon, q.MinLat, q.MaxLon, q.MaxLat, q.T0, q.T1)
			if !s.sendQueryResp(conn, q.Seq, recs, qerr, &out) {
				return
			}
		case proto.TypeQueryTime:
			q, perr := proto.ParseQueryTime(payload)
			if perr != nil {
				s.sendError(conn, perr.Error())
				return
			}
			recs, qerr := tn.log.Query(q.Device, q.T0, q.T1)
			if !s.sendQueryResp(conn, q.Seq, recs, qerr, &out) {
				return
			}
		default:
			s.sendError(conn, fmt.Sprintf("unexpected frame type %#x", typ))
			return
		}
	}
}

// ingest runs one Ingest frame through TryIngest batch by batch. A
// device maps to exactly one shard, so each batch is accepted or
// rejected whole; rejected indices plus a retry hint go back in the
// ack. A latched persist error rides in ack.Err even when every batch
// was accepted — the client learns the backend is sick now, not at the
// next Sync barrier.
func (s *Server) ingest(tn *tenant, m proto.Ingest, fixes *[]engine.Fix) proto.IngestAck {
	ack := proto.IngestAck{Seq: m.Seq}
	for i, b := range m.Batches {
		fx := (*fixes)[:0]
		for _, k := range b.Keys {
			fx = append(fx, engine.Fix{Device: b.Device, Point: core.Point{
				X: k.Lon * s.mPerDeg,
				Y: k.Lat * s.mPerDeg,
				T: float64(k.T),
			}})
		}
		*fixes = fx
		n, err := tn.eng.TryIngest(fx)
		ack.Accepted += uint64(n)
		switch {
		case err == nil:
		case errors.Is(err, engine.ErrBackpressure):
			ack.Rejected = append(ack.Rejected, uint32(i))
		case errors.Is(err, engine.ErrDegraded):
			// Degraded read-only mode: the engine rejected the batch
			// whole and resends are futile until the fault clears, but
			// queries still answer. Flag it so the client stops retrying
			// instead of hammering a sick backend.
			ack.Degraded = true
			ack.Err = err.Error()
		default:
			ack.Err = err.Error() // latched persist error or engine closed
		}
	}
	if len(ack.Rejected) > 0 {
		ack.RetryAfterMillis = s.retryMillis(tn.eng)
	}
	if !ack.Degraded && tn.eng.Degraded() {
		ack.Degraded = true // e.g. an empty Ingest frame used as a probe
	}
	if ack.Err == "" {
		if perr := tn.eng.Err(); perr != nil {
			ack.Err = perr.Error()
		}
	}
	return ack
}

// sendQueryResp writes a QueryResp, downgrading unencodable or
// oversized results to an in-band error. Returns false when the
// connection is dead.
func (s *Server) sendQueryResp(conn net.Conn, seq uint64, recs []trajstore.PersistedRecord, qerr error, out *[]byte) bool {
	resp := proto.QueryResp{Seq: seq, Records: recs}
	if qerr != nil {
		resp = proto.QueryResp{Seq: seq, Err: qerr.Error()}
	}
	p, err := proto.AppendQueryResp((*out)[:0], resp)
	if err == nil && len(p)+1 > proto.MaxFrame {
		err = proto.ErrFrameTooBig
	}
	if err != nil {
		resp = proto.QueryResp{Seq: seq, Err: fmt.Sprintf("result not sendable (%d records): %v — narrow the window", len(recs), err)}
		p, _ = proto.AppendQueryResp((*out)[:0], resp)
	}
	*out = p
	return proto.WriteFrame(conn, proto.TypeQueryResp, p) == nil
}

func (s *Server) sendError(conn net.Conn, msg string) {
	_ = proto.WriteFrame(conn, proto.TypeError, proto.AppendError(nil, proto.ErrorMsg{Err: msg}))
}
