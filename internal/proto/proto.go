// Package proto defines bqsd's wire protocol: length-prefixed binary
// frames over a byte stream, reusing the storage layer's delta-varint
// idiom for trajectory payloads (trajstore.DeltaEncode — the same bytes
// the segment log persists, so a batch travels, lands on disk and is
// queried back in one representation).
//
// Framing: every frame is a 4-byte little-endian length N (1 ≤ N ≤
// MaxFrame) followed by N bytes — a 1-byte frame type and the message
// payload. Integers inside payloads are unsigned/zig-zag varints,
// strings are length-prefixed, coordinates ride as delta-varint key
// blocks or (for query windows) IEEE-754 bits.
//
// A session is: client sends Hello naming a tenant, server answers
// HelloAck, then the client issues Ingest / Sync / QueryWindow /
// QueryTime requests and the server answers each in order (IngestAck /
// SyncAck / QueryResp). Requests carry a client-chosen Seq echoed in
// the response, so clients may pipeline. A frame the server cannot
// parse is answered with an Error frame and the connection is closed.
//
// Backpressure is explicit: an IngestAck reports which device batches
// were rejected because their shard queue was full, plus a retry-after
// hint in milliseconds. The server never buffers rejected fixes — the
// client owns the retry. A standing backend failure (a latched persist
// error) rides in the ack's Err field, so a streaming client learns the
// backend is sick without waiting for a Sync barrier.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"github.com/trajcomp/bqs/internal/trajstore"
)

// Version is the protocol version spoken by this package; Hello carries
// it and the server rejects mismatches.
const Version = 1

// MaxFrame caps a frame's body (type byte + payload). Large enough for
// an ingest batch of ~100k fixes or a fat query response; small enough
// that a malicious length prefix cannot balloon memory.
const MaxFrame = 4 << 20

// Frame types.
const (
	TypeHello       byte = 0x01 // client → server: version + tenant
	TypeHelloAck    byte = 0x02 // server → client: accept/reject
	TypeIngest      byte = 0x03 // client → server: per-device fix batches
	TypeIngestAck   byte = 0x04 // server → client: accepted/rejected + retry hint
	TypeSync        byte = 0x05 // client → server: durability barrier (optionally flush)
	TypeSyncAck     byte = 0x06 // server → client
	TypeQueryWindow byte = 0x07 // client → server: spatio-temporal window
	TypeQueryTime   byte = 0x08 // client → server: device + time range
	TypeQueryResp   byte = 0x09 // server → client: records
	TypeError       byte = 0x0A // server → client: fatal; connection closes
)

// ErrFrameTooBig reports a frame exceeding MaxFrame.
var ErrFrameTooBig = errors.New("proto: frame exceeds size cap")

// ErrMalformed reports a syntactically invalid frame payload.
var ErrMalformed = errors.New("proto: malformed frame")

// WriteFrame writes one frame. The payload must not include the type
// byte; WriteFrame prepends it.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	n := len(payload) + 1
	if n > MaxFrame {
		return ErrFrameTooBig
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(n))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, reusing buf when it is large enough, and
// returns the frame type, the payload (aliasing the returned buffer —
// valid until the next ReadFrame on it) and the buffer to pass back in.
// io.EOF is returned verbatim on a clean end between frames; a frame
// cut off mid-body yields io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, buf []byte) (typ byte, payload []byte, bufOut []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, buf, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n == 0 {
		return 0, nil, buf, ErrMalformed
	}
	if n > MaxFrame {
		return 0, nil, buf, ErrFrameTooBig
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	b := buf[:n]
	if _, err := io.ReadFull(r, b); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, buf, err
	}
	return b[0], b[1:], buf, nil
}

// Hello opens a session and names the tenant whose engine and log the
// connection binds to.
type Hello struct {
	Version uint32
	Tenant  string
}

// HelloAck accepts (Err == "") or rejects a session.
type HelloAck struct {
	Version uint32
	Err     string
}

// DeviceBatch is one device's fixes within an Ingest frame, in arrival
// order. The engine routes a device to exactly one shard, so a batch is
// accepted or rejected as a unit.
type DeviceBatch struct {
	Device string
	Keys   []trajstore.GeoKey
}

// Ingest carries a batch of fixes grouped by device.
type Ingest struct {
	Seq     uint64
	Batches []DeviceBatch
}

// IngestAck answers an Ingest frame. Accepted counts fixes enqueued;
// Rejected lists the indices (into the request's Batches) refused by
// backpressure — resend those after RetryAfterMillis. Err carries a
// standing backend failure (latched persist error): fixes may still
// have been accepted, but durability is no longer assured until the
// operator intervenes. Degraded marks the engine's degraded read-only
// mode (terminal persist failure): the batch was rejected whole, resends
// are futile until the operator clears the fault and heals the engine,
// but queries keep answering — clients should stop resending rather
// than retry.
type IngestAck struct {
	Seq              uint64
	Accepted         uint64
	Rejected         []uint32
	RetryAfterMillis uint32
	Err              string
	Degraded         bool
}

// Sync requests the durability barrier: when the ack returns, every fix
// accepted before the request is processed and (with Flush) every open
// session has been finalized into the log. Flush makes freshly
// ingested trajectories visible to queries at the cost of restarting
// those devices' compression sessions.
type Sync struct {
	Seq   uint64
	Flush bool
}

// SyncAck answers Sync; Err carries the barrier failure, if any.
type SyncAck struct {
	Seq uint64
	Err string
}

// QueryWindow asks for every durable record with a trajectory segment
// intersecting [MinLon, MaxLon] × [MinLat, MaxLat] (degrees) during
// [T0, T1] (seconds).
type QueryWindow struct {
	Seq            uint64
	MinLon, MinLat float64
	MaxLon, MaxLat float64
	T0, T1         uint32
}

// QueryTime asks for one device's durable records overlapping [T0, T1].
type QueryTime struct {
	Seq    uint64
	Device string
	T0, T1 uint32
}

// QueryResp answers QueryWindow/QueryTime.
type QueryResp struct {
	Seq     uint64
	Records []trajstore.PersistedRecord
	Err     string
}

// ErrorMsg is the fatal server response to an unparseable or
// unexpected frame; the server closes the connection after sending it.
type ErrorMsg struct {
	Err string
}

// ---- encoding ----

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendHello appends h's payload to dst.
func AppendHello(dst []byte, h Hello) []byte {
	dst = binary.AppendUvarint(dst, uint64(h.Version))
	return appendString(dst, h.Tenant)
}

// AppendHelloAck appends a's payload to dst.
func AppendHelloAck(dst []byte, a HelloAck) []byte {
	dst = binary.AppendUvarint(dst, uint64(a.Version))
	return appendString(dst, a.Err)
}

// AppendIngest appends m's payload to dst. Keys outside the wire
// format's coordinate range fail with trajstore.ErrRange.
func AppendIngest(dst []byte, m Ingest) ([]byte, error) {
	dst = binary.AppendUvarint(dst, m.Seq)
	dst = binary.AppendUvarint(dst, uint64(len(m.Batches)))
	for _, b := range m.Batches {
		dst = appendString(dst, b.Device)
		block, err := trajstore.DeltaEncode(b.Keys)
		if err != nil {
			return nil, err
		}
		dst = binary.AppendUvarint(dst, uint64(len(block)))
		dst = append(dst, block...)
	}
	return dst, nil
}

// AppendIngestAck appends a's payload to dst.
func AppendIngestAck(dst []byte, a IngestAck) []byte {
	dst = binary.AppendUvarint(dst, a.Seq)
	dst = binary.AppendUvarint(dst, a.Accepted)
	dst = binary.AppendUvarint(dst, uint64(len(a.Rejected)))
	for _, r := range a.Rejected {
		dst = binary.AppendUvarint(dst, uint64(r))
	}
	dst = binary.AppendUvarint(dst, uint64(a.RetryAfterMillis))
	dst = appendString(dst, a.Err)
	degraded := byte(0)
	if a.Degraded {
		degraded = 1
	}
	return append(dst, degraded)
}

// AppendSync appends m's payload to dst.
func AppendSync(dst []byte, m Sync) []byte {
	dst = binary.AppendUvarint(dst, m.Seq)
	flush := byte(0)
	if m.Flush {
		flush = 1
	}
	return append(dst, flush)
}

// AppendSyncAck appends a's payload to dst.
func AppendSyncAck(dst []byte, a SyncAck) []byte {
	dst = binary.AppendUvarint(dst, a.Seq)
	return appendString(dst, a.Err)
}

// AppendQueryWindow appends m's payload to dst.
func AppendQueryWindow(dst []byte, m QueryWindow) []byte {
	dst = binary.AppendUvarint(dst, m.Seq)
	for _, f := range [4]float64{m.MinLon, m.MinLat, m.MaxLon, m.MaxLat} {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
	}
	dst = binary.AppendUvarint(dst, uint64(m.T0))
	dst = binary.AppendUvarint(dst, uint64(m.T1))
	return dst
}

// AppendQueryTime appends m's payload to dst.
func AppendQueryTime(dst []byte, m QueryTime) []byte {
	dst = binary.AppendUvarint(dst, m.Seq)
	dst = appendString(dst, m.Device)
	dst = binary.AppendUvarint(dst, uint64(m.T0))
	dst = binary.AppendUvarint(dst, uint64(m.T1))
	return dst
}

// AppendQueryResp appends m's payload to dst.
func AppendQueryResp(dst []byte, m QueryResp) ([]byte, error) {
	dst = binary.AppendUvarint(dst, m.Seq)
	dst = binary.AppendUvarint(dst, uint64(len(m.Records)))
	for _, r := range m.Records {
		dst = appendString(dst, r.Device)
		dst = binary.AppendUvarint(dst, uint64(r.T0))
		dst = binary.AppendUvarint(dst, uint64(r.T1))
		block, err := trajstore.DeltaEncode(r.Keys)
		if err != nil {
			return nil, err
		}
		dst = binary.AppendUvarint(dst, uint64(len(block)))
		dst = append(dst, block...)
	}
	return appendString(dst, m.Err), nil
}

// AppendError appends m's payload to dst.
func AppendError(dst []byte, m ErrorMsg) []byte {
	return appendString(dst, m.Err)
}

// ---- decoding ----

// cursor is a bounds-checked payload reader; every decode error is
// ErrMalformed so fuzzed garbage can never panic or allocate
// implausibly.
type cursor struct {
	b []byte
}

func (c *cursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b)
	if n <= 0 {
		return 0, ErrMalformed
	}
	c.b = c.b[n:]
	return v, nil
}

func (c *cursor) u32() (uint32, error) {
	v, err := c.uvarint()
	if err != nil || v > math.MaxUint32 {
		return 0, ErrMalformed
	}
	return uint32(v), nil
}

func (c *cursor) str() (string, error) {
	n, err := c.uvarint()
	if err != nil || n > uint64(len(c.b)) {
		return "", ErrMalformed
	}
	s := string(c.b[:n])
	c.b = c.b[n:]
	return s, nil
}

func (c *cursor) f64() (float64, error) {
	if len(c.b) < 8 {
		return 0, ErrMalformed
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(c.b))
	c.b = c.b[8:]
	return v, nil
}

func (c *cursor) byte() (byte, error) {
	if len(c.b) < 1 {
		return 0, ErrMalformed
	}
	v := c.b[0]
	c.b = c.b[1:]
	return v, nil
}

// keyBlock reads a length-prefixed delta-varint key block.
func (c *cursor) keyBlock() ([]trajstore.GeoKey, error) {
	n, err := c.uvarint()
	if err != nil || n > uint64(len(c.b)) {
		return nil, ErrMalformed
	}
	keys, err := trajstore.DeltaDecode(c.b[:n])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	// DeltaDecode bounds the timestamp but not the coordinates (deltas
	// can walk them off the globe); reject here so a decoded batch is
	// always persistable and re-encodable.
	for _, k := range keys {
		if math.Abs(k.Lat) > 90 || math.Abs(k.Lon) > 180 {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, trajstore.ErrRange)
		}
	}
	c.b = c.b[n:]
	return keys, nil
}

// done reports trailing garbage as ErrMalformed: payloads are exact.
func (c *cursor) done() error {
	if len(c.b) != 0 {
		return ErrMalformed
	}
	return nil
}

// ParseHello decodes a Hello payload.
func ParseHello(p []byte) (Hello, error) {
	c := cursor{p}
	v, err := c.uvarint()
	if err != nil || v > math.MaxUint32 {
		return Hello{}, ErrMalformed
	}
	tenant, err := c.str()
	if err != nil {
		return Hello{}, err
	}
	return Hello{Version: uint32(v), Tenant: tenant}, c.done()
}

// ParseHelloAck decodes a HelloAck payload.
func ParseHelloAck(p []byte) (HelloAck, error) {
	c := cursor{p}
	v, err := c.uvarint()
	if err != nil || v > math.MaxUint32 {
		return HelloAck{}, ErrMalformed
	}
	msg, err := c.str()
	if err != nil {
		return HelloAck{}, err
	}
	return HelloAck{Version: uint32(v), Err: msg}, c.done()
}

// ParseIngest decodes an Ingest payload.
func ParseIngest(p []byte) (Ingest, error) {
	c := cursor{p}
	seq, err := c.uvarint()
	if err != nil {
		return Ingest{}, err
	}
	n, err := c.uvarint()
	if err != nil || n > uint64(len(c.b)) { // every batch needs ≥ 2 bytes
		return Ingest{}, ErrMalformed
	}
	m := Ingest{Seq: seq, Batches: make([]DeviceBatch, 0, n)}
	for i := uint64(0); i < n; i++ {
		dev, err := c.str()
		if err != nil {
			return Ingest{}, err
		}
		keys, err := c.keyBlock()
		if err != nil {
			return Ingest{}, err
		}
		m.Batches = append(m.Batches, DeviceBatch{Device: dev, Keys: keys})
	}
	return m, c.done()
}

// ParseIngestAck decodes an IngestAck payload.
func ParseIngestAck(p []byte) (IngestAck, error) {
	c := cursor{p}
	a := IngestAck{}
	var err error
	if a.Seq, err = c.uvarint(); err != nil {
		return IngestAck{}, err
	}
	if a.Accepted, err = c.uvarint(); err != nil {
		return IngestAck{}, err
	}
	n, err := c.uvarint()
	if err != nil || n > uint64(len(c.b)) {
		return IngestAck{}, ErrMalformed
	}
	if n > 0 {
		a.Rejected = make([]uint32, 0, n)
		for i := uint64(0); i < n; i++ {
			r, err := c.u32()
			if err != nil {
				return IngestAck{}, err
			}
			a.Rejected = append(a.Rejected, r)
		}
	}
	if a.RetryAfterMillis, err = c.u32(); err != nil {
		return IngestAck{}, err
	}
	if a.Err, err = c.str(); err != nil {
		return IngestAck{}, err
	}
	degraded, err := c.byte()
	if err != nil || degraded > 1 {
		return IngestAck{}, ErrMalformed
	}
	a.Degraded = degraded == 1
	return a, c.done()
}

// ParseSync decodes a Sync payload.
func ParseSync(p []byte) (Sync, error) {
	c := cursor{p}
	seq, err := c.uvarint()
	if err != nil {
		return Sync{}, err
	}
	flush, err := c.byte()
	if err != nil || flush > 1 {
		return Sync{}, ErrMalformed
	}
	return Sync{Seq: seq, Flush: flush == 1}, c.done()
}

// ParseSyncAck decodes a SyncAck payload.
func ParseSyncAck(p []byte) (SyncAck, error) {
	c := cursor{p}
	seq, err := c.uvarint()
	if err != nil {
		return SyncAck{}, err
	}
	msg, err := c.str()
	if err != nil {
		return SyncAck{}, err
	}
	return SyncAck{Seq: seq, Err: msg}, c.done()
}

// ParseQueryWindow decodes a QueryWindow payload. NaN bounds are
// rejected (they would silently match nothing).
func ParseQueryWindow(p []byte) (QueryWindow, error) {
	c := cursor{p}
	m := QueryWindow{}
	var err error
	if m.Seq, err = c.uvarint(); err != nil {
		return QueryWindow{}, err
	}
	for _, f := range [4]*float64{&m.MinLon, &m.MinLat, &m.MaxLon, &m.MaxLat} {
		if *f, err = c.f64(); err != nil {
			return QueryWindow{}, err
		}
		if math.IsNaN(*f) {
			return QueryWindow{}, ErrMalformed
		}
	}
	if m.T0, err = c.u32(); err != nil {
		return QueryWindow{}, err
	}
	if m.T1, err = c.u32(); err != nil {
		return QueryWindow{}, err
	}
	return m, c.done()
}

// ParseQueryTime decodes a QueryTime payload.
func ParseQueryTime(p []byte) (QueryTime, error) {
	c := cursor{p}
	m := QueryTime{}
	var err error
	if m.Seq, err = c.uvarint(); err != nil {
		return QueryTime{}, err
	}
	if m.Device, err = c.str(); err != nil {
		return QueryTime{}, err
	}
	if m.T0, err = c.u32(); err != nil {
		return QueryTime{}, err
	}
	if m.T1, err = c.u32(); err != nil {
		return QueryTime{}, err
	}
	return m, c.done()
}

// ParseQueryResp decodes a QueryResp payload.
func ParseQueryResp(p []byte) (QueryResp, error) {
	c := cursor{p}
	m := QueryResp{}
	var err error
	if m.Seq, err = c.uvarint(); err != nil {
		return QueryResp{}, err
	}
	n, err := c.uvarint()
	if err != nil || n > uint64(len(c.b)) {
		return QueryResp{}, ErrMalformed
	}
	if n > 0 {
		m.Records = make([]trajstore.PersistedRecord, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		var r trajstore.PersistedRecord
		if r.Device, err = c.str(); err != nil {
			return QueryResp{}, err
		}
		if r.T0, err = c.u32(); err != nil {
			return QueryResp{}, err
		}
		if r.T1, err = c.u32(); err != nil {
			return QueryResp{}, err
		}
		if r.Keys, err = c.keyBlock(); err != nil {
			return QueryResp{}, err
		}
		m.Records = append(m.Records, r)
	}
	if m.Err, err = c.str(); err != nil {
		return QueryResp{}, err
	}
	return m, c.done()
}

// ParseError decodes an ErrorMsg payload.
func ParseError(p []byte) (ErrorMsg, error) {
	c := cursor{p}
	msg, err := c.str()
	if err != nil {
		return ErrorMsg{}, err
	}
	return ErrorMsg{Err: msg}, c.done()
}
