package proto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"

	"github.com/trajcomp/bqs/internal/trajstore"
)

func testKeys(n int) []trajstore.GeoKey {
	keys := make([]trajstore.GeoKey, n)
	for i := range keys {
		keys[i] = trajstore.GeoKey{
			Lat: 39.9 + float64(i)*0.0011,
			Lon: 116.3 - float64(i)*0.0007,
			T:   1000 + uint32(i)*30,
		}
	}
	return keys
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, {0x42}, bytes.Repeat([]byte{0xAB}, 1<<16)}
	for i, p := range payloads {
		if err := WriteFrame(&buf, byte(i+1), p); err != nil {
			t.Fatalf("WriteFrame %d: %v", i, err)
		}
	}
	var scratch []byte
	for i, want := range payloads {
		typ, got, s, err := ReadFrame(&buf, scratch)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		scratch = s
		if typ != byte(i+1) {
			t.Fatalf("frame %d: type = %#x, want %#x", i, typ, i+1)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: payload mismatch (%d vs %d bytes)", i, len(got), len(want))
		}
	}
	if _, _, _, err := ReadFrame(&buf, scratch); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestFrameLimits(t *testing.T) {
	if err := WriteFrame(io.Discard, TypeIngest, make([]byte, MaxFrame)); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized write: err = %v, want ErrFrameTooBig", err)
	}

	// Oversized length prefix must be rejected before allocating.
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, _, _, err := ReadFrame(bytes.NewReader(hdr[:]), nil); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized read: err = %v, want ErrFrameTooBig", err)
	}

	// Zero-length frame (no type byte) is malformed.
	binary.LittleEndian.PutUint32(hdr[:], 0)
	if _, _, _, err := ReadFrame(bytes.NewReader(hdr[:]), nil); !errors.Is(err, ErrMalformed) {
		t.Fatalf("zero-length read: err = %v, want ErrMalformed", err)
	}

	// Truncated body is an unexpected EOF, not a clean one.
	binary.LittleEndian.PutUint32(hdr[:], 10)
	if _, _, _, err := ReadFrame(bytes.NewReader(append(hdr[:], 1, 2, 3)), nil); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated read: err = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestMessageRoundTrips(t *testing.T) {
	keys := testKeys(12)

	t.Run("hello", func(t *testing.T) {
		in := Hello{Version: Version, Tenant: "fleet-a"}
		out, err := ParseHello(AppendHello(nil, in))
		if err != nil || out != in {
			t.Fatalf("got %+v, %v; want %+v", out, err, in)
		}
	})
	t.Run("helloAck", func(t *testing.T) {
		in := HelloAck{Version: Version, Err: "bad tenant"}
		out, err := ParseHelloAck(AppendHelloAck(nil, in))
		if err != nil || out != in {
			t.Fatalf("got %+v, %v; want %+v", out, err, in)
		}
	})
	t.Run("ingest", func(t *testing.T) {
		in := Ingest{Seq: 7, Batches: []DeviceBatch{
			{Device: "bus-001", Keys: keys},
			{Device: "bus-002", Keys: keys[:1]},
		}}
		p, err := AppendIngest(nil, in)
		if err != nil {
			t.Fatalf("AppendIngest: %v", err)
		}
		out, err := ParseIngest(p)
		if err != nil {
			t.Fatalf("ParseIngest: %v", err)
		}
		if out.Seq != in.Seq || len(out.Batches) != len(in.Batches) {
			t.Fatalf("got %+v", out)
		}
		for i := range in.Batches {
			if out.Batches[i].Device != in.Batches[i].Device {
				t.Fatalf("batch %d device %q", i, out.Batches[i].Device)
			}
			assertKeysEqual(t, out.Batches[i].Keys, in.Batches[i].Keys)
		}
	})
	t.Run("ingestAck", func(t *testing.T) {
		in := IngestAck{Seq: 7, Accepted: 12, Rejected: []uint32{1, 3}, RetryAfterMillis: 50, Err: "disk on fire"}
		out, err := ParseIngestAck(AppendIngestAck(nil, in))
		if err != nil || !reflect.DeepEqual(out, in) {
			t.Fatalf("got %+v, %v; want %+v", out, err, in)
		}
		// Empty Rejected decodes to nil, not []uint32{}.
		in2 := IngestAck{Seq: 1, Accepted: 5}
		out2, err := ParseIngestAck(AppendIngestAck(nil, in2))
		if err != nil || !reflect.DeepEqual(out2, in2) {
			t.Fatalf("got %+v, %v; want %+v", out2, err, in2)
		}
	})
	t.Run("sync", func(t *testing.T) {
		for _, flush := range []bool{false, true} {
			in := Sync{Seq: 9, Flush: flush}
			out, err := ParseSync(AppendSync(nil, in))
			if err != nil || out != in {
				t.Fatalf("got %+v, %v; want %+v", out, err, in)
			}
		}
	})
	t.Run("syncAck", func(t *testing.T) {
		in := SyncAck{Seq: 9, Err: "sync: EIO"}
		out, err := ParseSyncAck(AppendSyncAck(nil, in))
		if err != nil || out != in {
			t.Fatalf("got %+v, %v; want %+v", out, err, in)
		}
	})
	t.Run("queryWindow", func(t *testing.T) {
		in := QueryWindow{Seq: 3, MinLon: 116.2, MinLat: 39.8, MaxLon: 116.5, MaxLat: 40.1, T0: 100, T1: 9000}
		out, err := ParseQueryWindow(AppendQueryWindow(nil, in))
		if err != nil || out != in {
			t.Fatalf("got %+v, %v; want %+v", out, err, in)
		}
	})
	t.Run("queryTime", func(t *testing.T) {
		in := QueryTime{Seq: 4, Device: "bus-001", T0: 0, T1: 1 << 30}
		out, err := ParseQueryTime(AppendQueryTime(nil, in))
		if err != nil || out != in {
			t.Fatalf("got %+v, %v; want %+v", out, err, in)
		}
	})
	t.Run("queryResp", func(t *testing.T) {
		in := QueryResp{Seq: 4, Records: []trajstore.PersistedRecord{
			{Device: "bus-001", T0: 1000, T1: 1330, Keys: keys[:4]},
			{Device: "bus-002", T0: 2000, T1: 2000, Keys: keys[:1]},
		}}
		p, err := AppendQueryResp(nil, in)
		if err != nil {
			t.Fatalf("AppendQueryResp: %v", err)
		}
		out, err := ParseQueryResp(p)
		if err != nil {
			t.Fatalf("ParseQueryResp: %v", err)
		}
		if out.Seq != in.Seq || out.Err != "" || len(out.Records) != 2 {
			t.Fatalf("got %+v", out)
		}
		for i := range in.Records {
			g, w := out.Records[i], in.Records[i]
			if g.Device != w.Device || g.T0 != w.T0 || g.T1 != w.T1 {
				t.Fatalf("record %d: got %+v, want %+v", i, g, w)
			}
			assertKeysEqual(t, g.Keys, w.Keys)
		}
	})
	t.Run("error", func(t *testing.T) {
		in := ErrorMsg{Err: "protocol violation"}
		out, err := ParseError(AppendError(nil, in))
		if err != nil || out != in {
			t.Fatalf("got %+v, %v; want %+v", out, err, in)
		}
	})
}

// assertKeysEqual compares at wire resolution: encoding quantizes
// coordinates, so compare re-encoded blocks.
func assertKeysEqual(t *testing.T, got, want []trajstore.GeoKey) {
	t.Helper()
	g, err1 := trajstore.DeltaEncode(got)
	w, err2 := trajstore.DeltaEncode(want)
	if err1 != nil || err2 != nil {
		t.Fatalf("re-encode: %v, %v", err1, err2)
	}
	if !bytes.Equal(g, w) {
		t.Fatalf("key blocks differ: %d vs %d keys", len(got), len(want))
	}
}

func TestParseRejectsTrailingGarbage(t *testing.T) {
	p := AppendSync(nil, Sync{Seq: 1, Flush: true})
	if _, err := ParseSync(append(p, 0xFF)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("trailing garbage: err = %v, want ErrMalformed", err)
	}
}

func TestParseIngestRejectsHugeCount(t *testing.T) {
	// A batch count far beyond the payload length must fail before any
	// large allocation.
	p := binary.AppendUvarint(nil, 1)  // seq
	p = binary.AppendUvarint(p, 1<<40) // absurd batch count
	if _, err := ParseIngest(p); !errors.Is(err, ErrMalformed) {
		t.Fatalf("huge count: err = %v, want ErrMalformed", err)
	}
}

func TestParseQueryWindowRejectsNaN(t *testing.T) {
	in := QueryWindow{Seq: 1, MinLon: 1, MinLat: 2, MaxLon: 3, MaxLat: 4, T0: 0, T1: 10}
	p := AppendQueryWindow(nil, in)
	// MinLon float64 starts right after the 1-byte seq varint.
	for i := 1; i < 9; i++ {
		p[i] = 0xFF // quiet NaN pattern
	}
	if _, err := ParseQueryWindow(p); !errors.Is(err, ErrMalformed) {
		t.Fatalf("NaN bound: err = %v, want ErrMalformed", err)
	}
}
