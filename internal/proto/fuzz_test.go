package proto

import (
	"bytes"
	"testing"

	"github.com/trajcomp/bqs/internal/trajstore"
)

// FuzzFrameDecode mirrors trajstore's FuzzDeltaDecode for the network
// layer: any byte string handed to the parsers must either fail with an
// error or decode into a message that re-encodes and re-parses to the
// same wire bytes. Panics and runaway allocations are the bugs hunted.
func FuzzFrameDecode(f *testing.F) {
	keys := []trajstore.GeoKey{
		{Lat: 39.9, Lon: 116.3, T: 1000},
		{Lat: 39.91, Lon: 116.31, T: 1030},
	}
	f.Add(TypeHello, AppendHello(nil, Hello{Version: Version, Tenant: "t"}))
	f.Add(TypeHelloAck, AppendHelloAck(nil, HelloAck{Version: Version}))
	if p, err := AppendIngest(nil, Ingest{Seq: 1, Batches: []DeviceBatch{{Device: "d", Keys: keys}}}); err == nil {
		f.Add(TypeIngest, p)
	}
	f.Add(TypeIngestAck, AppendIngestAck(nil, IngestAck{Seq: 1, Accepted: 2, Rejected: []uint32{0}, RetryAfterMillis: 50}))
	f.Add(TypeSync, AppendSync(nil, Sync{Seq: 2, Flush: true}))
	f.Add(TypeSyncAck, AppendSyncAck(nil, SyncAck{Seq: 2}))
	f.Add(TypeQueryWindow, AppendQueryWindow(nil, QueryWindow{Seq: 3, MinLon: 116, MinLat: 39, MaxLon: 117, MaxLat: 40, T1: 99}))
	f.Add(TypeQueryTime, AppendQueryTime(nil, QueryTime{Seq: 4, Device: "d", T1: 99}))
	if p, err := AppendQueryResp(nil, QueryResp{Seq: 4, Records: []trajstore.PersistedRecord{{Device: "d", T0: 1000, T1: 1030, Keys: keys}}}); err == nil {
		f.Add(TypeQueryResp, p)
	}
	f.Add(TypeError, AppendError(nil, ErrorMsg{Err: "x"}))
	f.Add(byte(0xFF), []byte{})

	f.Fuzz(func(t *testing.T, typ byte, payload []byte) {
		switch typ {
		case TypeHello:
			if m, err := ParseHello(payload); err == nil {
				reparse(t, payload, AppendHello(nil, m))
			}
		case TypeHelloAck:
			if m, err := ParseHelloAck(payload); err == nil {
				reparse(t, payload, AppendHelloAck(nil, m))
			}
		case TypeIngest:
			if m, err := ParseIngest(payload); err == nil {
				p2, err := AppendIngest(nil, m)
				if err != nil {
					t.Fatalf("decoded Ingest fails to re-encode: %v", err)
				}
				// Delta blocks are canonical, so re-encode is exact.
				reparse(t, payload, p2)
			}
		case TypeIngestAck:
			if m, err := ParseIngestAck(payload); err == nil {
				reparse(t, payload, AppendIngestAck(nil, m))
			}
		case TypeSync:
			if m, err := ParseSync(payload); err == nil {
				reparse(t, payload, AppendSync(nil, m))
			}
		case TypeSyncAck:
			if m, err := ParseSyncAck(payload); err == nil {
				reparse(t, payload, AppendSyncAck(nil, m))
			}
		case TypeQueryWindow:
			if m, err := ParseQueryWindow(payload); err == nil {
				reparse(t, payload, AppendQueryWindow(nil, m))
			}
		case TypeQueryTime:
			if m, err := ParseQueryTime(payload); err == nil {
				reparse(t, payload, AppendQueryTime(nil, m))
			}
		case TypeQueryResp:
			if m, err := ParseQueryResp(payload); err == nil {
				p2, err := AppendQueryResp(nil, m)
				if err != nil {
					t.Fatalf("decoded QueryResp fails to re-encode: %v", err)
				}
				reparse(t, payload, p2)
			}
		case TypeError:
			if m, err := ParseError(payload); err == nil {
				reparse(t, payload, AppendError(nil, m))
			}
		}
	})
}

// reparse asserts a successfully decoded payload re-encodes to bytes
// that are accepted again. Varints are canonical in our encoders, so
// byte equality is the contract — but the fuzzer may hand us
// non-canonical varints that still parse; in that case only require the
// round-trip to be stable from the re-encoded form onward.
func reparse(t *testing.T, original, reencoded []byte) {
	t.Helper()
	if bytes.Equal(original, reencoded) {
		return
	}
	// Non-canonical input: the re-encoded form must be a fixed point.
	if len(reencoded) > len(original) {
		t.Fatalf("re-encode grew payload: %d -> %d bytes", len(original), len(reencoded))
	}
}

// FuzzReadFrame feeds arbitrary streams to the frame reader: it must
// never panic, never allocate beyond MaxFrame, and must consume frames
// deterministically.
func FuzzReadFrame(f *testing.F) {
	var good bytes.Buffer
	_ = WriteFrame(&good, TypeSync, AppendSync(nil, Sync{Seq: 1}))
	f.Add(good.Bytes())
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, stream []byte) {
		r := bytes.NewReader(stream)
		var buf []byte
		for i := 0; i < 64; i++ {
			typ, payload, b, err := ReadFrame(r, buf)
			if err != nil {
				return
			}
			buf = b
			if len(payload)+1 > MaxFrame {
				t.Fatalf("frame over cap: type %#x, %d bytes", typ, len(payload))
			}
		}
	})
}
