package bqs

import (
	"github.com/trajcomp/bqs/internal/core"
	"github.com/trajcomp/bqs/internal/interp"
	"github.com/trajcomp/bqs/internal/stream"
)

// StreamCompressor is the common interface of every online compressor in
// this package: BQS, FBQS, BufferedGreedy, TimeSensitive, and adapted
// multi-emitters (see AdaptBufferedDP).
type StreamCompressor = stream.Compressor

// Compress runs any streaming compressor over pts and returns the
// compressed trajectory (all key points, including the flush).
func Compress(c StreamCompressor, pts []Point) []Point {
	return stream.Compress(c, pts)
}

// AdaptBufferedDP wraps a BufferedDP (which can emit several key points
// per push) as a StreamCompressor.
func AdaptBufferedDP(b *BufferedDP) StreamCompressor { return stream.Adapt(b) }

// Distribution maps normalized elapsed time within a compressed segment to
// normalized progress along it (the paper's P, Equation 2); see Uniform
// and NewGaussianFit.
type Distribution = interp.P

// Uniform is the paper's default reconstruction distribution: constant
// speed within each segment.
func Uniform() Distribution { return interp.Uniform{} }

// GaussianFit fits a reconstruction distribution online from observed
// progress samples using the numerically stable streaming recurrences the
// paper cites (Knuth's semi-numerical algorithms).
type GaussianFit = interp.OnlineGaussian

// Reconstruct returns the interpolated position at time t from a
// compressed trajectory (Equation 1). A nil distribution means Uniform.
func Reconstruct(keys []Point, t float64, p Distribution) (Point, error) {
	return interp.At(keys, t, p)
}

// ReconstructSeries interpolates positions at each timestamp; timestamps
// outside the trajectory's span are skipped.
func ReconstructSeries(keys []Point, ts []float64, p Distribution) []Point {
	return interp.Series(keys, ts, p)
}

// ReconstructionError returns the maximum and mean distance between each
// original point and its reconstruction at the same timestamp.
func ReconstructionError(orig, keys []Point, p Distribution) (maxErr, meanErr float64) {
	return interp.SpatialError(orig, keys, p)
}

// ValidateErrorBound verifies the paper's central guarantee over a
// compressed trajectory: every original point must lie within tolerance of
// the compressed segment (matched by timestamp) it falls into. It returns
// the worst observed deviation and whether the bound holds.
func ValidateErrorBound(orig, keys []Point, tolerance float64, metric Metric) (worst float64, ok bool) {
	ki := 0
	for _, p := range orig {
		for ki+1 < len(keys) && keys[ki+1].T < p.T {
			ki++
		}
		if ki+1 >= len(keys) {
			break
		}
		if p.T <= keys[ki].T || p.T >= keys[ki+1].T {
			continue
		}
		if d := core.MaxDeviation([]Point{p}, keys[ki], keys[ki+1], metric); d > worst {
			worst = d
		}
	}
	return worst, worst <= tolerance*(1+1e-9)
}
