package bqs

import (
	"fmt"

	"github.com/trajcomp/bqs/internal/engine"
	"github.com/trajcomp/bqs/internal/trajstore"
	"github.com/trajcomp/bqs/internal/trajstore/segmentlog"
)

// Durable persistence: the append-only, CRC-checksummed segment log
// (internal/trajstore/segmentlog) makes the ingestion engine
// restartable. Finalized session trajectories are appended in the
// delta-varint wire format, Engine.Sync is the durability barrier, and
// on reopen the log truncates any torn tail left by a crash and rebuilds
// its device/time index by scanning.

// Persister is the durability hook consumed by the engine: Append
// receives every finalized trajectory, Sync is the durability barrier.
type Persister = trajstore.Persister

// SegmentLog is an open append-only trajectory log; it implements
// Persister and answers device/time-range queries straight from disk.
type SegmentLog = segmentlog.Log

// SegmentLogOptions parameterizes OpenSegmentLog.
type SegmentLogOptions = segmentlog.Options

// SegmentLogRecord is one persisted trajectory, decoded.
type SegmentLogRecord = segmentlog.Record

// SegmentLogStats is a snapshot of a log's contents.
type SegmentLogStats = segmentlog.Stats

// OpenSegmentLog opens (creating if necessary) a segment log directory,
// recovering from any crash-torn tail.
func OpenSegmentLog(dir string, opts SegmentLogOptions) (*SegmentLog, error) {
	return segmentlog.Open(dir, opts)
}

// OpenDurableEngine opens a segment log in dir and starts an ingestion
// engine persisting into it: every session finalized by idle eviction or
// Close durably lands on disk, Sync is the durability barrier, and
// Close closes the log. Any Persister already set in cfg is replaced.
func OpenDurableEngine(dir string, cfg EngineConfig) (*Engine, error) {
	lg, err := segmentlog.Open(dir, segmentlog.Options{})
	if err != nil {
		return nil, fmt.Errorf("bqs: %w", err)
	}
	cfg.Persister = lg
	e, err := engine.New(cfg)
	if err != nil {
		lg.Close()
		return nil, err
	}
	return e, nil
}
