package bqs

import (
	"fmt"

	"github.com/trajcomp/bqs/internal/engine"
	"github.com/trajcomp/bqs/internal/trajstore"
	"github.com/trajcomp/bqs/internal/trajstore/segmentlog"
)

// Durable persistence: the append-only, CRC-checksummed segment log
// (internal/trajstore/segmentlog) makes the ingestion engine
// restartable. Finalized session trajectories are appended in the
// delta-varint wire format, Engine.Sync is the durability barrier, and
// on reopen the log truncates any torn tail left by a crash and rebuilds
// its device/time index by scanning.

// Persister is the durability hook consumed by the engine: Append
// receives every finalized trajectory, Sync is the durability barrier.
type Persister = trajstore.Persister

// SegmentLog is an open append-only trajectory log; it implements
// Persister and answers device/time-range queries straight from disk.
type SegmentLog = segmentlog.Log

// SegmentLogOptions parameterizes OpenSegmentLog.
type SegmentLogOptions = segmentlog.Options

// SegmentLogRecord is one persisted trajectory, decoded.
type SegmentLogRecord = segmentlog.Record

// SegmentLogStats is a snapshot of a log's contents.
type SegmentLogStats = segmentlog.Stats

// LogWindowStats reports how a durable window query was answered: how
// much the segment summaries and per-record bounding boxes pruned, and
// how many records had to be decoded.
type LogWindowStats = segmentlog.WindowStats

// CompactionPolicy parameterizes segment-log compaction: MinAge and
// CoarseTolerance drive error-bounded ageing, MergeChunks re-joins the
// engine's chunked session records. See segmentlog.CompactionPolicy.
type CompactionPolicy = segmentlog.CompactionPolicy

// CompactionResult reports what one compaction pass did.
type CompactionResult = segmentlog.CompactionResult

// ErrLogLocked reports that another process holds a log directory's
// write lock.
var ErrLogLocked = segmentlog.ErrLocked

// ErrLogReadOnly reports a mutating operation on a read-only log.
var ErrLogReadOnly = segmentlog.ErrReadOnly

// ErrDegraded reports that an engine is in degraded read-only mode: a
// terminal persister failure (full disk, corrupt log) — or one that
// outlived the EngineConfig.PersistRetry budget — means new fixes
// cannot be made durable, so Ingest/TryIngest reject them while
// queries keep answering. Match with errors.Is; the error wraps the
// root cause. Engine.Heal re-arms ingestion once the fault is cleared,
// re-appending the trajectories parked in memory meanwhile.
var ErrDegraded = engine.ErrDegraded

// PersistRetryPolicy bounds the engine's retry loop for transient
// persister failures (I/O hiccups, timeouts); terminal failures and
// exhausted retries degrade the engine instead. The zero value selects
// the defaults. See engine.RetryPolicy.
type PersistRetryPolicy = engine.RetryPolicy

// ShardedSegmentLog is a segment log fanned out over per-shard
// subdirectories, each a complete single log under its own MANIFEST; it
// implements Persister and routes devices with the same hash the engine
// shards by, so engine workers append without cross-shard contention.
type ShardedSegmentLog = segmentlog.ShardedLog

// OpenSegmentLog opens (creating if necessary) a segment log directory,
// recovering from any crash-torn tail. Writable opens take the
// directory's exclusive lock; set SegmentLogOptions.ReadOnly to inspect
// a directory another process owns.
func OpenSegmentLog(dir string, opts SegmentLogOptions) (*SegmentLog, error) {
	return segmentlog.Open(dir, opts)
}

// OpenShardedSegmentLog opens (creating or migrating if necessary) a
// sharded segment log. shards only matters for a directory that does
// not hold a sharded log yet (≤ 0 means GOMAXPROCS): an existing
// directory keeps the shard count persisted in its SHARDS file, and a
// legacy single-log directory is migrated in place — crash-safely, with
// the legacy files as the authoritative copy until the migration
// commits. OpenDurableEngine opens its log through this.
func OpenShardedSegmentLog(dir string, shards int, opts SegmentLogOptions) (*ShardedSegmentLog, error) {
	return segmentlog.OpenSharded(dir, shards, opts)
}

// CompactLog runs one merge/dedup/ageing compaction pass over the log's
// sealed segments and atomically publishes the smaller generation.
// Queries and appends on the same log proceed concurrently. Compaction
// also upgrades pre-index (version-1) segments to the current format,
// sealing block indexes so window queries prune instead of scanning.
func CompactLog(lg *SegmentLog, policy CompactionPolicy) (CompactionResult, error) {
	return lg.Compact(policy)
}

// QueryLogWindow answers a spatio-temporal window query over a segment
// log: every record — across all devices, in log order — with at least
// one trajectory segment entering [minX, maxX] × [minY, maxY] (degrees:
// X longitude, Y latitude) during [t0, t1]. Sealed block indexes and
// manifest summaries prune the candidate set; candidates are decoded
// and tested exactly. Engine.QueryWindow is the metric-plane
// counterpart that additionally merges live in-memory sessions.
func QueryLogWindow(lg *SegmentLog, minX, minY, maxX, maxY float64, t0, t1 uint32) ([]SegmentLogRecord, error) {
	return lg.QueryWindow(minX, minY, maxX, maxY, t0, t1)
}

// OpenDurableEngine opens a sharded segment log in dir and starts an
// ingestion engine persisting into it: every session finalized by idle
// eviction or Close durably lands on disk, Sync is the durability
// barrier, and Close closes the log. Any Persister already set in cfg
// is replaced. The log's shard count follows cfg.Shards for a fresh
// directory; reopening an existing one the persisted count is
// authoritative and cfg.Shards is overridden to match, so each engine
// worker always owns exactly one log shard.
func OpenDurableEngine(dir string, cfg EngineConfig) (*Engine, error) {
	return OpenDurableEngineWithLog(dir, SegmentLogOptions{}, cfg)
}

// OpenDurableEngineWithLog is OpenDurableEngine with explicit log
// options. With logOpts.Compaction set and cfg.CompactInterval > 0 the
// engine periodically compacts the log in the background, reclaiming
// disk while preserving the error bound.
func OpenDurableEngineWithLog(dir string, logOpts SegmentLogOptions, cfg EngineConfig) (*Engine, error) {
	lg, err := segmentlog.OpenSharded(dir, cfg.Shards, logOpts)
	if err != nil {
		return nil, fmt.Errorf("bqs: %w", err)
	}
	// The persisted shard count decides where every stored device lives,
	// so the engine must shard identically — the count wins over
	// cfg.Shards, and each engine worker binds to its own log shard.
	cfg.Shards = lg.NumShards()
	cfg.Persister = lg
	e, err := engine.New(cfg)
	if err != nil {
		_ = lg.Close() // engine construction failed; nothing was appended
		return nil, err
	}
	return e, nil
}
