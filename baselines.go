package bqs

import (
	"github.com/trajcomp/bqs/internal/baseline"
)

// The comparison algorithms evaluated by the paper, re-exported for
// benchmarking and for applications that want a windowed or offline
// compressor with the same Point types.

// BufferedDP is the Buffered Douglas-Peucker online baseline
// (Section III-B1). Obtain one with NewBufferedDP.
type BufferedDP = baseline.BufferedDP

// BufferedGreedy is the Buffered Greedy Deviation (sliding window)
// baseline (Section III-B2). Obtain one with NewBufferedGreedy.
type BufferedGreedy = baseline.BufferedGreedy

// DeadReckoning is the velocity-extrapolation reporter the paper compares
// FBQS against on synthetic data. Obtain one with NewDeadReckoning.
type DeadReckoning = baseline.DeadReckoning

// DouglasPeucker compresses offline with the classic Douglas-Peucker
// algorithm: error-bounded, O(n²) worst case, requires the whole
// trajectory.
func DouglasPeucker(pts []Point, tolerance float64, metric Metric) ([]Point, error) {
	return baseline.DouglasPeucker(pts, tolerance, metric)
}

// NewBufferedDP returns a Buffered Douglas-Peucker compressor with the
// given buffer capacity (the paper evaluates 32-256).
func NewBufferedDP(tolerance float64, bufSize int, metric Metric) (*BufferedDP, error) {
	return baseline.NewBufferedDP(tolerance, bufSize, metric)
}

// NewBufferedGreedy returns a Buffered Greedy Deviation compressor.
func NewBufferedGreedy(tolerance float64, bufSize int, metric Metric) (*BufferedGreedy, error) {
	return baseline.NewBufferedGreedy(tolerance, bufSize, metric)
}

// NewDeadReckoning returns a dead-reckoning reporter with the given
// prediction-error tolerance.
func NewDeadReckoning(tolerance float64) (*DeadReckoning, error) {
	return baseline.NewDeadReckoning(tolerance)
}

// SquishELambda compresses with SQUISH-E(λ): compression-ratio-bounded,
// online, error unbounded (related work the paper discusses).
func SquishELambda(pts []Point, lambda float64) ([]Point, error) {
	return baseline.SquishELambda(pts, lambda)
}

// SquishEMu compresses with SQUISH-E(μ): SED-error-bounded, offline.
func SquishEMu(pts []Point, mu float64) ([]Point, error) {
	return baseline.SquishEMu(pts, mu)
}

// UniformSample keeps every k-th point: the no-guarantee strawman.
func UniformSample(pts []Point, k int) ([]Point, error) {
	return baseline.UniformSample(pts, k)
}
