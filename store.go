package bqs

import (
	"github.com/trajcomp/bqs/internal/device"
	"github.com/trajcomp/bqs/internal/trajstore"
)

// Historical trajectory storage (the paper's Section V-F maintenance
// procedures) and the Camazotz device model behind Table II.

// Store is the on-device historical trajectory database with
// error-bounded merging and ageing. Obtain one with NewStore.
type Store = trajstore.Store

// StoreConfig parameterizes a Store.
type StoreConfig = trajstore.Config

// StoredSegment is one stored compressed segment with merge bookkeeping.
type StoredSegment = trajstore.Segment

// GeoKey is a key point in the 12-byte wire format's geographic
// coordinates.
type GeoKey = trajstore.GeoKey

// NewStore returns an empty trajectory store.
func NewStore(cfg StoreConfig) (*Store, error) { return trajstore.NewStore(cfg) }

// StoreStats is a point-in-time snapshot of store bookkeeping, merged
// across shards with Add.
type StoreStats = trajstore.Stats

// ShardedStore is a fixed set of independent Stores with fan-out queries
// and merged stats — the storage layer behind the ingestion Engine
// (Engine.Stores returns one).
type ShardedStore = trajstore.Sharded

// NewShardedStore returns n independent stores built from one config.
func NewShardedStore(n int, cfg StoreConfig) (*ShardedStore, error) {
	return trajstore.NewSharded(n, cfg)
}

// EncodeTrajectory serializes key points in the paper's 12-byte-per-sample
// wire format (int32 micro-degree latitude/longitude + uint32 seconds).
func EncodeTrajectory(keys []GeoKey) ([]byte, error) {
	return trajstore.EncodeTrajectory(keys)
}

// DecodeTrajectory inverts EncodeTrajectory, returning the key points and
// bytes consumed.
func DecodeTrajectory(b []byte) ([]GeoKey, int, error) {
	return trajstore.DecodeTrajectory(b)
}

// DeltaEncodeTrajectory serializes key points with zig-zag varint deltas —
// an extension that typically halves the wire size again.
func DeltaEncodeTrajectory(keys []GeoKey) ([]byte, error) {
	return trajstore.DeltaEncode(keys)
}

// DeltaDecodeTrajectory inverts DeltaEncodeTrajectory.
func DeltaDecodeTrajectory(b []byte) ([]GeoKey, error) {
	return trajstore.DeltaDecode(b)
}

// StorageModel is the tracker's flash budget model; its OperationalDays
// reproduces Table II of the paper.
type StorageModel = device.StorageModel

// EnergyModel is the duty-cycle energy budget extension.
type EnergyModel = device.EnergyModel

// DefaultStorageModel returns the paper's Table II setup: 50 KB GPS
// budget, 12 bytes per sample, one sample per minute.
func DefaultStorageModel() StorageModel { return device.DefaultStorageModel() }

// DefaultEnergyModel returns Camazotz-class energy numbers.
func DefaultEnergyModel() EnergyModel { return device.DefaultEnergyModel() }
