package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildCmd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cmd.bin")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// writeZigZag writes a trace that needs several key points: straight
// runs with sharp turns every 20 samples.
func writeZigZag(t *testing.T, path string, n int) {
	t.Helper()
	var sb strings.Builder
	y := 0.0
	for i := 0; i < n; i++ {
		if i%20 == 0 {
			y += 50
		}
		fmt.Fprintf(&sb, "%.3f,%.3f,%d\n", float64(i)*10, y, i)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestSmokeCompress(t *testing.T) {
	bin := buildCmd(t)
	dir := t.TempDir()
	in := filepath.Join(dir, "in.csv")
	writeZigZag(t, in, 100)
	for _, algo := range []string{"fbqs", "bqs", "dp"} {
		outFile := filepath.Join(dir, "out_"+algo+".csv")
		out, err := exec.Command(bin, "-algo", algo, "-d", "5", "-o", outFile, in).CombinedOutput()
		if err != nil {
			t.Fatalf("bqscompress -algo %s: %v\n%s", algo, err, out)
		}
		data, err := os.ReadFile(outFile)
		if err != nil {
			t.Fatal(err)
		}
		keys := strings.Count(string(data), "\n")
		if keys == 0 || keys >= 100 {
			t.Fatalf("%s: %d key points from 100 samples", algo, keys)
		}
	}
}

func TestSmokeCompressBadInput(t *testing.T) {
	bin := buildCmd(t)
	in := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(in, []byte("not,a\nnumber\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := exec.Command(bin, in).Run(); err == nil {
		t.Fatal("malformed input accepted")
	}
}
