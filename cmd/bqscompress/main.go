// Command bqscompress compresses a CSV trace (x,y,t per line) with any of
// the implemented algorithms and reports the compression rate, the worst
// observed deviation, and the run time.
//
// Usage:
//
//	bqscompress -algo bqs|fbqs|bdp|bgd|dp [-d metres] [-buffer N]
//	            [-metric line|segment] [-o file] [input.csv]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/trajcomp/bqs/internal/baseline"
	"github.com/trajcomp/bqs/internal/core"
	"github.com/trajcomp/bqs/internal/stream"
)

func main() {
	algo := flag.String("algo", "fbqs", "algorithm: bqs, fbqs, bdp, bgd or dp")
	tol := flag.Float64("d", 10, "deviation tolerance in metres")
	buf := flag.Int("buffer", 32, "buffer size for bdp/bgd")
	metricName := flag.String("metric", "line", "deviation metric: line or segment")
	out := flag.String("o", "-", "output file for compressed points (- for stdout)")
	flag.Parse()

	metric := core.MetricLine
	switch *metricName {
	case "line":
	case "segment":
		metric = core.MetricSegment
	default:
		fail(fmt.Errorf("unknown metric %q", *metricName))
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}
	pts, err := stream.ReadCSV(in)
	if err != nil {
		fail(err)
	}
	if len(pts) == 0 {
		fail(fmt.Errorf("no input points"))
	}

	start := time.Now()
	var keys []core.Point
	switch *algo {
	case "bqs", "fbqs":
		mode := core.ModeExact
		if *algo == "fbqs" {
			mode = core.ModeFast
		}
		c, err := core.NewCompressor(core.Config{
			Tolerance: *tol, Mode: mode, Metric: metric, RotationWarmup: -1,
		})
		if err != nil {
			fail(err)
		}
		keys = c.CompressBatch(pts)
		defer func() {
			fmt.Fprintf(os.Stderr, "pruning power: %.3f\n", c.Stats().PruningPower())
		}()
	case "bdp":
		c, err := baseline.NewBufferedDP(*tol, *buf, metric)
		if err != nil {
			fail(err)
		}
		for _, p := range pts {
			keys = append(keys, c.Push(p)...)
		}
		keys = append(keys, c.Flush()...)
	case "bgd":
		c, err := baseline.NewBufferedGreedy(*tol, *buf, metric)
		if err != nil {
			fail(err)
		}
		for _, p := range pts {
			if kp, ok := c.Push(p); ok {
				keys = append(keys, kp)
			}
		}
		if kp, ok := c.Flush(); ok {
			keys = append(keys, kp)
		}
	case "dp":
		keys, err = baseline.DouglasPeucker(pts, *tol, metric)
		if err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("unknown algorithm %q", *algo))
	}
	elapsed := time.Since(start)

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := stream.WriteCSV(w, keys); err != nil {
		fail(err)
	}

	worst := worstDeviation(pts, keys, metric)
	fmt.Fprintf(os.Stderr,
		"%s: %d → %d points (rate %.2f%%), worst deviation %.2f m (d = %.1f m), %.1f ms\n",
		*algo, len(pts), len(keys), 100*float64(len(keys))/float64(len(pts)),
		worst, *tol, float64(elapsed.Microseconds())/1000)
}

func worstDeviation(orig, keys []core.Point, metric core.Metric) float64 {
	var worst float64
	ki := 0
	for _, p := range orig {
		for ki+1 < len(keys) && keys[ki+1].T < p.T {
			ki++
		}
		if ki+1 >= len(keys) {
			break
		}
		if p.T <= keys[ki].T || p.T >= keys[ki+1].T {
			continue
		}
		if d := core.MaxDeviation([]core.Point{p}, keys[ki], keys[ki+1], metric); d > worst {
			worst = d
		}
	}
	return worst
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bqscompress:", err)
	os.Exit(1)
}
