// Command benchjson runs the repository's performance-tracking benchmarks
// through `go test -bench` and writes the machine-readable report the
// perf trajectory is built from (the committed BENCH_<pr>.json files and
// the CI benchmark artifact).
//
// Usage:
//
//	benchjson [-out BENCH.json] [-bench regexp] [-pkgs ./internal/core,.]
//	          [-count 3] [-benchtime 1s] [-cpus 1,2,4,8]
//	          [-note "environment note"]
//	benchjson -check [BENCH_3.json BENCH_5.json ...]
//
// -check validates committed reports instead of running benchmarks:
// every file (default: BENCH_*.json in the current directory, sorted)
// must decode and pass schema validation, and — when two or more
// reports are given — the joined perf trajectory must be non-empty,
// i.e. at least one benchmark series must span multiple reports.
// Entries without the cpus field (pre-matrix files) join as cpus=1.
// The trajectory is printed; the exit status is the CI gate.
//
// With -count > 1 the per-benchmark median run is recorded, which is
// robust against scheduler noise on CI-class containers. -cpus runs
// every benchmark once per GOMAXPROCS value (go test -cpu) and the
// report carries one entry per (benchmark, cpus) pair — the scaling
// matrix BENCH_6.json commits. The default benchmark set covers the
// core per-fix decision loop (CorePush*, QuadrantBounds), the
// end-to-end sharded ingest (EngineIngest*), the durable window queries
// (QueryWindow{Selective,Full}), compaction throughput
// (CompactThroughput) and the full network path through bqsd's wire
// protocol (ServerIngestLoopback); see internal/benchjson for the
// schema.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/trajcomp/bqs/internal/benchjson"
)

func main() {
	out := flag.String("out", "BENCH.json", "output file for the JSON report")
	bench := flag.String("bench", "BenchmarkCorePush|BenchmarkQuadrantBounds|BenchmarkEngineIngest|BenchmarkQueryWindow|BenchmarkCompactThroughput|BenchmarkServerIngest", "benchmark regexp passed to go test")
	pkgs := flag.String("pkgs", "./internal/core,.,./internal/trajstore/segmentlog,./internal/server", "comma-separated packages to benchmark")
	count := flag.Int("count", 3, "benchmark repetitions; the median per name is reported")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime value")
	cpus := flag.String("cpus", "", "comma-separated GOMAXPROCS matrix passed to go test -cpu (e.g. 1,2,4,8); empty runs at the current GOMAXPROCS only")
	note := flag.String("note", "", "free-form environment note recorded in the report")
	check := flag.Bool("check", false, "validate committed BENCH_*.json reports and their joined trajectory instead of benchmarking")
	flag.Parse()

	if *check {
		if err := runCheck(flag.Args()); err != nil {
			fail(err)
		}
		return
	}

	if *cpus != "" {
		for _, c := range strings.Split(*cpus, ",") {
			if n, err := strconv.Atoi(strings.TrimSpace(c)); err != nil || n < 1 {
				fail(fmt.Errorf("-cpus: bad value %q", c))
			}
		}
	}

	var runs []benchjson.Result
	for _, pkg := range strings.Split(*pkgs, ",") {
		pkg = strings.TrimSpace(pkg)
		if pkg == "" {
			continue
		}
		args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem",
			"-count", strconv.Itoa(*count), "-benchtime", *benchtime}
		if *cpus != "" {
			args = append(args, "-cpu", *cpus)
		}
		args = append(args, pkg)
		fmt.Fprintf(os.Stderr, "benchjson: go %s\n", strings.Join(args, " "))
		cmd := exec.Command("go", args...)
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fail(fmt.Errorf("go test %s: %w", pkg, err))
		}
		parsed, err := benchjson.Parse(&buf)
		if err != nil {
			fail(err)
		}
		runs = append(runs, parsed...)
	}
	if len(runs) == 0 {
		fail(fmt.Errorf("no benchmark results matched %q in %q", *bench, *pkgs))
	}

	rep := benchjson.Report{
		Schema:     benchjson.Schema,
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		Note:       *note,
		Benchmarks: benchjson.Median(runs),
	}
	if err := benchjson.Validate(rep); err != nil {
		fail(err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmark(s) to %s\n", len(rep.Benchmarks), *out)
	for _, b := range rep.Benchmarks {
		line := fmt.Sprintf("  %-28s cpu=%-2d %12.1f ns/op  %6d allocs/op", b.Name, b.Cpus, b.NsPerOp, b.AllocsPerOp)
		if b.FixesPerSec > 0 {
			line += fmt.Sprintf("  %10.0f fixes/s", b.FixesPerSec)
		}
		fmt.Fprintln(os.Stderr, line)
	}
}

// runCheck is the `-check` gate: decode + Validate every report, join
// them into the cross-report trajectory, and fail when multiple reports
// produce no multi-point series — exactly the silent break a schema
// change in one report's entries would cause.
func runCheck(files []string) error {
	if len(files) == 0 {
		var err error
		files, err = filepath.Glob("BENCH_*.json")
		if err != nil {
			return err
		}
		sort.Strings(files)
	}
	if len(files) == 0 {
		return fmt.Errorf("-check: no BENCH_*.json files found")
	}
	reports := make([]benchjson.Report, 0, len(files))
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		var rep benchjson.Report
		if err := json.Unmarshal(data, &rep); err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		if err := benchjson.Validate(rep); err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		if len(rep.Benchmarks) == 0 {
			return fmt.Errorf("%s: no benchmark entries", f)
		}
		reports = append(reports, rep)
	}
	series := benchjson.Trajectory(files, reports)
	multi := 0
	for _, s := range series {
		if len(s.Points) > 1 {
			multi++
		}
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d report(s), %d series, %d spanning multiple reports\n",
		len(reports), len(series), multi)
	for _, s := range series {
		if len(s.Points) < 2 {
			continue
		}
		line := fmt.Sprintf("  %-28s cpu=%-2d", s.Name, s.Cpus)
		for _, p := range s.Points {
			line += fmt.Sprintf("  %s:%.0fns", strings.TrimSuffix(strings.TrimPrefix(p.Label, "BENCH_"), ".json"), p.NsPerOp)
		}
		fmt.Fprintln(os.Stderr, line)
	}
	if len(reports) > 1 && multi == 0 {
		return fmt.Errorf("-check: trajectory is empty — %d reports share no (benchmark, cpus) series; a schema or naming change broke the join", len(reports))
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
