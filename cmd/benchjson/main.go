// Command benchjson runs the repository's performance-tracking benchmarks
// through `go test -bench` and writes the machine-readable report the
// perf trajectory is built from (the committed BENCH_<pr>.json files and
// the CI benchmark artifact).
//
// Usage:
//
//	benchjson [-out BENCH.json] [-bench regexp] [-pkgs ./internal/core,.]
//	          [-count 3] [-benchtime 1s] [-cpus 1,2,4,8]
//	          [-note "environment note"]
//
// With -count > 1 the per-benchmark median run is recorded, which is
// robust against scheduler noise on CI-class containers. -cpus runs
// every benchmark once per GOMAXPROCS value (go test -cpu) and the
// report carries one entry per (benchmark, cpus) pair — the scaling
// matrix BENCH_6.json commits. The default benchmark set covers the
// core per-fix decision loop (CorePush*, QuadrantBounds), the
// end-to-end sharded ingest (EngineIngest*), the durable window queries
// (QueryWindow{Selective,Full}) and compaction throughput
// (CompactThroughput); see internal/benchjson for the schema.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/trajcomp/bqs/internal/benchjson"
)

func main() {
	out := flag.String("out", "BENCH.json", "output file for the JSON report")
	bench := flag.String("bench", "BenchmarkCorePush|BenchmarkQuadrantBounds|BenchmarkEngineIngest|BenchmarkQueryWindow|BenchmarkCompactThroughput", "benchmark regexp passed to go test")
	pkgs := flag.String("pkgs", "./internal/core,.,./internal/trajstore/segmentlog", "comma-separated packages to benchmark")
	count := flag.Int("count", 3, "benchmark repetitions; the median per name is reported")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime value")
	cpus := flag.String("cpus", "", "comma-separated GOMAXPROCS matrix passed to go test -cpu (e.g. 1,2,4,8); empty runs at the current GOMAXPROCS only")
	note := flag.String("note", "", "free-form environment note recorded in the report")
	flag.Parse()

	if *cpus != "" {
		for _, c := range strings.Split(*cpus, ",") {
			if n, err := strconv.Atoi(strings.TrimSpace(c)); err != nil || n < 1 {
				fail(fmt.Errorf("-cpus: bad value %q", c))
			}
		}
	}

	var runs []benchjson.Result
	for _, pkg := range strings.Split(*pkgs, ",") {
		pkg = strings.TrimSpace(pkg)
		if pkg == "" {
			continue
		}
		args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem",
			"-count", strconv.Itoa(*count), "-benchtime", *benchtime}
		if *cpus != "" {
			args = append(args, "-cpu", *cpus)
		}
		args = append(args, pkg)
		fmt.Fprintf(os.Stderr, "benchjson: go %s\n", strings.Join(args, " "))
		cmd := exec.Command("go", args...)
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fail(fmt.Errorf("go test %s: %w", pkg, err))
		}
		parsed, err := benchjson.Parse(&buf)
		if err != nil {
			fail(err)
		}
		runs = append(runs, parsed...)
	}
	if len(runs) == 0 {
		fail(fmt.Errorf("no benchmark results matched %q in %q", *bench, *pkgs))
	}

	rep := benchjson.Report{
		Schema:     benchjson.Schema,
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		Note:       *note,
		Benchmarks: benchjson.Median(runs),
	}
	if err := benchjson.Validate(rep); err != nil {
		fail(err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmark(s) to %s\n", len(rep.Benchmarks), *out)
	for _, b := range rep.Benchmarks {
		line := fmt.Sprintf("  %-28s cpu=%-2d %12.1f ns/op  %6d allocs/op", b.Name, b.Cpus, b.NsPerOp, b.AllocsPerOp)
		if b.FixesPerSec > 0 {
			line += fmt.Sprintf("  %10.0f fixes/s", b.FixesPerSec)
		}
		fmt.Fprintln(os.Stderr, line)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
