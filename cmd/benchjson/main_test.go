package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/trajcomp/bqs/internal/benchjson"
)

func writeReport(t *testing.T, dir, name string, rep benchjson.Report) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunCheck(t *testing.T) {
	dir := t.TempDir()
	legacy := writeReport(t, dir, "BENCH_1.json", benchjson.Report{
		Schema: benchjson.Schema, Date: "2026-07-01",
		Benchmarks: []benchjson.Result{{Name: "CorePushFast", NsPerOp: 133}},
	})
	tagged := writeReport(t, dir, "BENCH_2.json", benchjson.Report{
		Schema: benchjson.Schema, Date: "2026-07-20",
		Benchmarks: []benchjson.Result{{Name: "CorePushFast", Cpus: 1, NsPerOp: 118}},
	})
	if err := runCheck([]string{legacy, tagged}); err != nil {
		t.Errorf("legacy+tagged pair: %v", err)
	}
	if err := runCheck([]string{legacy}); err != nil {
		t.Errorf("single report: %v", err)
	}

	// Disjoint benchmark names across reports: the trajectory is empty
	// and the gate must fail.
	disjoint := writeReport(t, dir, "BENCH_3.json", benchjson.Report{
		Schema:     benchjson.Schema,
		Benchmarks: []benchjson.Result{{Name: "RenamedBench", Cpus: 1, NsPerOp: 1}},
	})
	if err := runCheck([]string{legacy, disjoint}); err == nil {
		t.Error("disjoint reports passed -check")
	}

	// Schema and shape failures.
	bad := writeReport(t, dir, "BENCH_4.json", benchjson.Report{
		Schema:     "not-bqs-bench",
		Benchmarks: []benchjson.Result{{Name: "X", NsPerOp: 1}},
	})
	if err := runCheck([]string{bad}); err == nil {
		t.Error("unknown schema passed -check")
	}
	empty := writeReport(t, dir, "BENCH_5.json", benchjson.Report{Schema: benchjson.Schema})
	if err := runCheck([]string{empty}); err == nil {
		t.Error("report without benchmarks passed -check")
	}
	if err := runCheck([]string{filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("missing file passed -check")
	}
}

// TestRunCheckCommittedReports gates the real BENCH_*.json files at the
// repository root: they must validate and their joined trajectory must
// be non-empty — the regression the cpus-field normalization fixed.
func TestRunCheckCommittedReports(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil || len(files) == 0 {
		t.Skipf("no committed reports found: %v", err)
	}
	if err := runCheck(files); err != nil {
		t.Errorf("committed reports fail -check: %v", err)
	}
}
