package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmd compiles the command in the current package directory into a
// temp binary. Helper shared in spirit (copied) across the cmd smoke
// tests — each cmd is its own main package.
func buildCmd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cmd.bin")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestSmokeGenerate(t *testing.T) {
	bin := buildCmd(t)
	outFile := filepath.Join(t.TempDir(), "trace.csv")
	out, err := exec.Command(bin, "-model", "walk", "-n", "50", "-seed", "3", "-o", outFile).CombinedOutput()
	if err != nil {
		t.Fatalf("bqsgen: %v\n%s", err, out)
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines != 50 {
		t.Fatalf("generated %d lines, want 50", lines)
	}
	for _, line := range strings.SplitN(string(data), "\n", 2)[:1] {
		if len(strings.Split(line, ",")) != 3 {
			t.Fatalf("malformed CSV line %q", line)
		}
	}
}

func TestSmokeGenerateUnknownModel(t *testing.T) {
	bin := buildCmd(t)
	if err := exec.Command(bin, "-model", "submarine").Run(); err == nil {
		t.Fatal("unknown model accepted")
	}
}
