// Command bqsgen generates evaluation traces as CSV (x,y,t per line,
// metres and seconds).
//
// Usage:
//
//	bqsgen -model bat|vehicle|walk [-seed N] [-days N] [-n N] [-o file]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/trajcomp/bqs/internal/stream"
	"github.com/trajcomp/bqs/internal/synth"
)

func main() {
	model := flag.String("model", "walk", "trace model: bat, vehicle or walk")
	seed := flag.Int64("seed", 1, "random seed")
	days := flag.Int("days", 14, "tracking days (bat, vehicle)")
	n := flag.Int("n", 30000, "sample count (walk)")
	out := flag.String("o", "-", "output file (- for stdout)")
	flag.Parse()

	var tr synth.Trace
	switch *model {
	case "bat":
		cfg := synth.DefaultBatConfig(*seed)
		cfg.Days = *days
		tr = synth.Bat(cfg)
	case "vehicle":
		cfg := synth.DefaultVehicleConfig(*seed)
		cfg.Days = *days
		tr = synth.Vehicle(cfg)
	case "walk":
		cfg := synth.DefaultWalkConfig(*seed)
		cfg.N = *n
		tr = synth.Walk(cfg)
	default:
		fmt.Fprintf(os.Stderr, "bqsgen: unknown model %q\n", *model)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bqsgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := stream.WriteCSV(w, tr.Points()); err != nil {
		fmt.Fprintln(os.Stderr, "bqsgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bqsgen: %s, %d samples, moving fraction %.2f, path %.1f km\n",
		tr.Name, tr.Len(), tr.MovingFraction(), tr.PathLength()/1000)
}
