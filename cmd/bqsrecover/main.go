// Command bqsrecover reloads a segment-log directory written by the
// durable ingestion engine (bqs.OpenDurableEngine, bqsbench -persist),
// recovering from any crash-torn tail, and answers device/time-range
// queries straight from disk.
//
// Usage:
//
//	bqsrecover -dir logdir                    # summary + per-device listing
//	bqsrecover -dir logdir -device ID         # decode one device's trajectories
//	bqsrecover -dir logdir -device ID -t0 N -t1 M   # restrict to a time window
//	bqsrecover -dir logdir -device ID -csv    # lat,lon,t CSV on stdout
//
// Timestamps are the wire format's uint32 seconds. The exit status is
// non-zero if the directory is missing or cannot be interpreted as a
// segment log. Opening a crash-damaged log performs the same recovery
// the engine would — the torn tail is truncated in place — and the
// dropped byte count is reported (recovery is not an error).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"github.com/trajcomp/bqs/internal/trajstore/segmentlog"
)

func main() {
	dir := flag.String("dir", "", "segment-log directory (required)")
	device := flag.String("device", "", "decode this device's trajectories (default: list all devices)")
	t0 := flag.Uint64("t0", 0, "window start, seconds")
	t1 := flag.Uint64("t1", math.MaxUint32, "window end, seconds")
	csv := flag.Bool("csv", false, "with -device: emit lat,lon,t CSV instead of a listing")
	flag.Parse()

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "bqsrecover: -dir is required")
		flag.Usage()
		os.Exit(2)
	}
	if *t0 > math.MaxUint32 || *t1 > math.MaxUint32 || *t0 > *t1 {
		fail(fmt.Errorf("invalid time window [%d, %d]", *t0, *t1))
	}

	// Open would create a missing directory (it is the engine's write
	// path); a diagnostic tool pointed at a typo'd path must error
	// instead of conjuring an empty log and reporting zero records.
	if fi, err := os.Stat(*dir); err != nil {
		fail(err)
	} else if !fi.IsDir() {
		fail(fmt.Errorf("%s is not a directory", *dir))
	}

	lg, err := segmentlog.Open(*dir, segmentlog.Options{})
	if err != nil {
		fail(err)
	}
	defer lg.Close()

	s := lg.Stats()
	fmt.Fprintf(os.Stderr, "bqsrecover: %d segment file(s), %d records, %d devices, %d bytes",
		s.Segments, s.Records, s.Devices, s.Bytes)
	if s.Truncated > 0 {
		fmt.Fprintf(os.Stderr, " (recovered: dropped %d torn tail bytes)", s.Truncated)
	}
	fmt.Fprintln(os.Stderr)

	if *device == "" {
		for _, dev := range lg.Devices() {
			n, lo, hi, _ := lg.DeviceSpan(dev)
			fmt.Printf("%s\t%d records\ttime [%d, %d]\n", dev, n, lo, hi)
		}
		return
	}

	recs, err := lg.Query(*device, uint32(*t0), uint32(*t1))
	if err != nil {
		fail(err)
	}
	if len(recs) == 0 {
		fmt.Fprintf(os.Stderr, "bqsrecover: no records for %q in [%d, %d]\n", *device, *t0, *t1)
		os.Exit(1)
	}
	for i, rec := range recs {
		if *csv {
			for _, k := range rec.Keys {
				fmt.Printf("%.7f,%.7f,%d\n", k.Lat, k.Lon, k.T)
			}
			continue
		}
		fmt.Printf("trajectory %d: %d key points, time [%d, %d]\n", i, len(rec.Keys), rec.T0, rec.T1)
		for _, k := range rec.Keys {
			fmt.Printf("  %.7f,%.7f,%d\n", k.Lat, k.Lon, k.T)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bqsrecover:", err)
	os.Exit(1)
}
