// Command bqsrecover inspects and maintains a segment-log directory
// written by the durable ingestion engine (bqs.OpenDurableEngine,
// bqsbench -persist): it lists devices, decodes trajectories, and runs
// the merge/ageing compactor.
//
// Usage:
//
//	bqsrecover -dir logdir                    # summary + per-device listing
//	bqsrecover -dir logdir -device ID         # decode one device's trajectories
//	bqsrecover -dir logdir -device ID -t0 N -t1 M   # restrict to a time window
//	bqsrecover -dir logdir -device ID -csv    # lat,lon,t CSV on stdout
//	bqsrecover -dir logdir -window minLon,minLat,maxLon,maxLat [-t0 N -t1 M]
//	                                          # spatio-temporal query, all devices
//	bqsrecover -dir logdir -repair            # truncate a crash-torn tail in place
//	bqsrecover -dir logdir -compact [-merge-chunks=false]
//	          [-age 24h -coarse-tol 50]       # merge + age sealed segments
//
// -window decodes every record (any device, log order) with a
// trajectory segment entering the given degree rectangle during the
// [-t0, -t1] range, pruning via the sealed block indexes where present;
// a pruning summary goes to stderr. -csv emits device,lat,lon,t rows.
//
// Both layouts are understood: a single-log directory and the sharded
// layout OpenDurableEngine writes (a SHARDS file plus shard-NNN/
// subdirectories, each itself a single log this tool can also be
// pointed at directly). Sharded directories are never migrated or
// re-sharded by this tool.
//
// By default the directory is opened READ-ONLY: nothing on disk is
// touched, no lock is taken, and a crash-torn tail is reported but left
// in place — safe to point at a directory a live engine owns. -repair
// performs the engine's own recovery (truncating the torn tail) and
// -compact rewrites sealed segments; both take the directory's exclusive
// write lock and refuse to run while another process holds it.
//
// Timestamps are the wire format's uint32 seconds. The exit status is
// non-zero if the directory is missing or cannot be interpreted as a
// segment log.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/trajcomp/bqs/internal/trajstore/segmentlog"
)

// logHandle is the surface this tool needs; both segmentlog.Log and
// segmentlog.ShardedLog satisfy it, so a sharded directory (detected by
// its SHARDS file) is inspected through the same code paths.
type logHandle interface {
	Stats() segmentlog.Stats
	Devices() []string
	DeviceSpan(device string) (records int, t0, t1 uint32, ok bool)
	Query(device string, t0, t1 uint32) ([]segmentlog.Record, error)
	QueryWindowStats(minX, minY, maxX, maxY float64, t0, t1 uint32) ([]segmentlog.Record, segmentlog.WindowStats, error)
	Compact(p segmentlog.CompactionPolicy) (segmentlog.CompactionResult, error)
	Close() error
}

// openLog opens dir as a sharded log when a SHARDS file marks it as
// one, as a single log otherwise.
func openLog(dir string, opts segmentlog.Options) (logHandle, error) {
	if _, err := os.Stat(filepath.Join(dir, "SHARDS")); err == nil {
		return segmentlog.OpenSharded(dir, 0, opts)
	}
	return segmentlog.Open(dir, opts)
}

func main() {
	dir := flag.String("dir", "", "segment-log directory (required)")
	device := flag.String("device", "", "decode this device's trajectories (default: list all devices)")
	window := flag.String("window", "", "spatio-temporal query across all devices: minLon,minLat,maxLon,maxLat in degrees (combined with -t0/-t1)")
	t0 := flag.Uint64("t0", 0, "window start, seconds")
	t1 := flag.Uint64("t1", math.MaxUint32, "window end, seconds")
	csv := flag.Bool("csv", false, "with -device or -window: emit CSV instead of a listing")
	repair := flag.Bool("repair", false, "open read-write: truncate any crash-torn tail in place (takes the directory lock)")
	compact := flag.Bool("compact", false, "compact sealed segments (implies -repair)")
	mergeChunks := flag.Bool("merge-chunks", true, "with -compact: merge consecutive chunked records of a device")
	age := flag.Duration("age", 0, "with -compact: re-compress records older than this at -coarse-tol (0 with a tolerance set ages everything)")
	coarseTol := flag.Float64("coarse-tol", 0, "with -compact: ageing tolerance in metres (0 disables ageing)")
	flag.Parse()

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "bqsrecover: -dir is required")
		flag.Usage()
		os.Exit(2)
	}
	if *t0 > math.MaxUint32 || *t1 > math.MaxUint32 || *t0 > *t1 {
		fail(fmt.Errorf("invalid time window [%d, %d]", *t0, *t1))
	}

	// Open would create a missing directory (it is the engine's write
	// path); a diagnostic tool pointed at a typo'd path must error
	// instead of conjuring an empty log and reporting zero records.
	if fi, err := os.Stat(*dir); err != nil {
		fail(err)
	} else if !fi.IsDir() {
		fail(fmt.Errorf("%s is not a directory", *dir))
	}

	writable := *repair || *compact
	lg, err := openLog(*dir, segmentlog.Options{ReadOnly: !writable})
	if err != nil {
		fail(err)
	}
	defer lg.Close()

	s := lg.Stats()
	fmt.Fprintf(os.Stderr, "bqsrecover: %d segment file(s), %d records, %d devices, %d bytes, generation %d",
		s.Segments, s.Records, s.Devices, s.Bytes, s.Gen)
	if s.Truncated > 0 {
		if writable {
			fmt.Fprintf(os.Stderr, " (recovered: dropped %d torn tail bytes)", s.Truncated)
		} else {
			fmt.Fprintf(os.Stderr, " (detected %d torn tail bytes; rerun with -repair to truncate)", s.Truncated)
		}
	}
	fmt.Fprintln(os.Stderr)

	if *compact {
		res, err := lg.Compact(segmentlog.CompactionPolicy{
			MinAge:          *age,
			CoarseTolerance: *coarseTol,
			MergeChunks:     *mergeChunks,
		})
		if err != nil {
			fail(err)
		}
		reportCompaction(res)
		return
	}

	if *window != "" {
		if *device != "" {
			fail(fmt.Errorf("-window queries all devices; drop -device"))
		}
		minX, minY, maxX, maxY, err := parseWindow(*window)
		if err != nil {
			fail(err)
		}
		recs, ws, err := lg.QueryWindowStats(minX, minY, maxX, maxY, uint32(*t0), uint32(*t1))
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "bqsrecover: window [%g, %g]×[%g, %g] t[%d, %d]: %d/%d segments pruned, %d records decoded (of %d indexed), %d matched\n",
			minX, maxX, minY, maxY, *t0, *t1,
			ws.SegmentsPruned, ws.Segments, ws.RecordsDecoded, ws.RecordsIndexed, ws.RecordsMatched)
		for i, rec := range recs {
			if *csv {
				for _, k := range rec.Keys {
					fmt.Printf("%s,%.7f,%.7f,%d\n", rec.Device, k.Lat, k.Lon, k.T)
				}
				continue
			}
			fmt.Printf("%s trajectory %d: %d key points, time [%d, %d]\n", rec.Device, i, len(rec.Keys), rec.T0, rec.T1)
			for _, k := range rec.Keys {
				fmt.Printf("  %.7f,%.7f,%d\n", k.Lat, k.Lon, k.T)
			}
		}
		if len(recs) == 0 {
			fmt.Fprintln(os.Stderr, "bqsrecover: no records in the window")
			os.Exit(1)
		}
		return
	}

	if *device == "" {
		for _, dev := range lg.Devices() {
			n, lo, hi, _ := lg.DeviceSpan(dev)
			fmt.Printf("%s\t%d records\ttime [%d, %d]\n", dev, n, lo, hi)
		}
		return
	}

	recs, err := lg.Query(*device, uint32(*t0), uint32(*t1))
	if err != nil {
		fail(err)
	}
	if len(recs) == 0 {
		fmt.Fprintf(os.Stderr, "bqsrecover: no records for %q in [%d, %d]\n", *device, *t0, *t1)
		os.Exit(1)
	}
	for i, rec := range recs {
		if *csv {
			for _, k := range rec.Keys {
				fmt.Printf("%.7f,%.7f,%d\n", k.Lat, k.Lon, k.T)
			}
			continue
		}
		fmt.Printf("trajectory %d: %d key points, time [%d, %d]\n", i, len(rec.Keys), rec.T0, rec.T1)
		for _, k := range rec.Keys {
			fmt.Printf("  %.7f,%.7f,%d\n", k.Lat, k.Lon, k.T)
		}
	}
}

// reportCompaction prints a one-pass compaction summary.
func reportCompaction(res segmentlog.CompactionResult) {
	if res.Gen == 0 {
		if res.SegmentsIn == 0 {
			fmt.Println("compaction: nothing to do (no sealed segments)")
		} else {
			fmt.Printf("compaction: already compact (%d records, %d bytes unchanged)\n",
				res.RecordsIn, res.BytesIn)
		}
		return
	}
	saved := res.BytesIn - res.BytesOut
	pct := 0.0
	if res.BytesIn > 0 {
		pct = 100 * float64(saved) / float64(res.BytesIn)
	}
	fmt.Printf("compaction: %d → %d records, %d → %d bytes (saved %d, %.1f%%), %d merged, %d deduped, %d aged, generation %d\n",
		res.RecordsIn, res.RecordsOut, res.BytesIn, res.BytesOut, saved, pct,
		res.Merged, res.Deduped, res.Aged, res.Gen)
}

// parseWindow decodes "-window minLon,minLat,maxLon,maxLat".
func parseWindow(s string) (minX, minY, maxX, maxY float64, err error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return 0, 0, 0, 0, fmt.Errorf("-window wants minLon,minLat,maxLon,maxLat, got %q", s)
	}
	vals := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return 0, 0, 0, 0, fmt.Errorf("-window field %d: %v", i, err)
		}
		vals[i] = v
	}
	return vals[0], vals[1], vals[2], vals[3], nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bqsrecover:", err)
	os.Exit(1)
}
