package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"github.com/trajcomp/bqs/internal/trajstore"
	"github.com/trajcomp/bqs/internal/trajstore/segmentlog"
)

func buildCmd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cmd.bin")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// seedLog writes a small two-device log, returning its directory.
func seedLog(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	lg, err := segmentlog.Open(dir, segmentlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	keys := func(base int) []trajstore.GeoKey {
		out := make([]trajstore.GeoKey, 5)
		for i := range out {
			out[i] = trajstore.GeoKey{
				Lat: float64(base*100+i) / 1e7,
				Lon: float64(-base*100-i) / 1e7,
				T:   uint32(base*1000 + i*10),
			}
		}
		return out
	}
	if err := lg.Append("alpha", keys(1)); err != nil {
		t.Fatal(err)
	}
	if err := lg.Append("beta", keys(2)); err != nil {
		t.Fatal(err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestSmokeRecoverList(t *testing.T) {
	bin := buildCmd(t)
	dir := seedLog(t)
	out, err := exec.Command(bin, "-dir", dir).CombinedOutput()
	if err != nil {
		t.Fatalf("bqsrecover: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "beta") {
		t.Fatalf("device listing incomplete:\n%s", s)
	}
}

func TestSmokeRecoverQueryCSV(t *testing.T) {
	bin := buildCmd(t)
	dir := seedLog(t)
	cmd := exec.Command(bin, "-dir", dir, "-device", "alpha", "-csv")
	cmd.Stderr = nil
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("bqsrecover -device: %v", err)
	}
	lines := strings.Count(string(out), "\n")
	if lines != 5 {
		t.Fatalf("CSV has %d lines, want 5:\n%s", lines, out)
	}
	if !strings.HasPrefix(string(out), "0.0000100,-0.0000100,1000") {
		t.Fatalf("unexpected first CSV line:\n%s", out)
	}
}

// TestSmokeRecoverWindow: the spatio-temporal query mode finds the
// device whose cell the window covers, prints its records (CSV rows
// carry the device), and exits 1 on an empty window.
func TestSmokeRecoverWindow(t *testing.T) {
	bin := buildCmd(t)
	dir := seedLog(t)
	// alpha's keys sit near (1e-5°, -1e-5°); beta's near (2e-5°, -2e-5°).
	cmd := exec.Command(bin, "-dir", dir, "-window", "-0.0000150,0.0000050,-0.0000050,0.0000150", "-csv")
	cmd.Stderr = nil
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("bqsrecover -window: %v", err)
	}
	s := string(out)
	if !strings.Contains(s, "alpha,") || strings.Contains(s, "beta,") {
		t.Fatalf("window query selected the wrong devices:\n%s", s)
	}
	// Time restriction excludes alpha (its times are 1000..1040).
	if out, err := exec.Command(bin, "-dir", dir, "-window", "-1,-1,1,1", "-t0", "5000", "-t1", "6000").CombinedOutput(); err == nil {
		t.Fatalf("empty window query should exit non-zero:\n%s", out)
	}
	// A malformed window is rejected.
	if out, err := exec.Command(bin, "-dir", dir, "-window", "1,2,3").CombinedOutput(); err == nil {
		t.Fatalf("malformed -window accepted:\n%s", out)
	}
}

// TestSmokeRecoverTornTail runs the command against a crash-damaged log.
// The default read-only mode must report the torn tail WITHOUT touching
// the file (it could belong to a live engine about to flush); -repair
// must truncate it in place.
func TestSmokeRecoverTornTail(t *testing.T) {
	bin := buildCmd(t)
	dir := seedLog(t)
	seg := filepath.Join(dir, "seg-00000001.log")
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	torn := fi.Size() - 5
	if err := os.Truncate(seg, torn); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-dir", dir).CombinedOutput()
	if err != nil {
		t.Fatalf("bqsrecover on torn log: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "detected") || !strings.Contains(s, "alpha") || strings.Contains(s, "beta") {
		t.Fatalf("torn-tail read-only output wrong:\n%s", s)
	}
	if fi, err = os.Stat(seg); err != nil || fi.Size() != torn {
		t.Fatalf("read-only run modified the segment file (size %d, want %d): %v", fi.Size(), torn, err)
	}

	out, err = exec.Command(bin, "-dir", dir, "-repair").CombinedOutput()
	if err != nil {
		t.Fatalf("bqsrecover -repair: %v\n%s", err, out)
	}
	if s := string(out); !strings.Contains(s, "recovered") || !strings.Contains(s, "alpha") {
		t.Fatalf("torn-tail repair output wrong:\n%s", s)
	}
	if fi, err = os.Stat(seg); err != nil || fi.Size() >= torn {
		t.Fatalf("-repair did not truncate the torn tail (size %d): %v", fi.Size(), err)
	}
}

// TestSmokeRecoverCompact exercises -compact end to end: chunked records
// merge, disk bytes shrink, and the compacted log still answers queries.
func TestSmokeRecoverCompact(t *testing.T) {
	bin := buildCmd(t)
	dir := t.TempDir()
	// Tiny rotation threshold so the chunked records land in sealed
	// segments the compactor may rewrite.
	lg, err := segmentlog.Open(dir, segmentlog.Options{MaxSegmentBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]trajstore.GeoKey, 13)
	for i := range keys {
		keys[i] = trajstore.GeoKey{Lat: float64(i) / 1e7, Lon: float64(2*i) / 1e7, T: uint32(100 + i)}
	}
	// Three chunks overlapping by one key, the engine's trail shape.
	for _, c := range [][2]int{{0, 5}, {4, 9}, {8, 13}} {
		if err := lg.Append("gamma", keys[c[0]:c[1]]); err != nil {
			t.Fatal(err)
		}
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}

	out, err := exec.Command(bin, "-dir", dir, "-compact").CombinedOutput()
	if err != nil {
		t.Fatalf("bqsrecover -compact: %v\n%s", err, out)
	}
	if s := string(out); !strings.Contains(s, "merged") {
		t.Fatalf("compaction report missing:\n%s", s)
	}

	out, err = exec.Command(bin, "-dir", dir, "-device", "gamma", "-csv").Output()
	if err != nil {
		t.Fatalf("query after compaction: %v", err)
	}
	if lines := strings.Count(string(out), "\n"); lines != len(keys) {
		t.Fatalf("compacted log returned %d CSV points, want %d:\n%s", lines, len(keys), out)
	}
}

func TestSmokeRecoverMissingDir(t *testing.T) {
	bin := buildCmd(t)
	if err := exec.Command(bin).Run(); err == nil {
		t.Fatal("missing -dir accepted")
	}
}

// TestSmokeRecoverNonexistentDir: a typo'd path must error, not be
// created as a fresh empty log.
func TestSmokeRecoverNonexistentDir(t *testing.T) {
	bin := buildCmd(t)
	dir := filepath.Join(t.TempDir(), "no-such-log")
	if err := exec.Command(bin, "-dir", dir).Run(); err == nil {
		t.Fatal("nonexistent directory accepted")
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("diagnostic run created the directory: %v", err)
	}
}

func TestSmokeRecoverUnknownDevice(t *testing.T) {
	bin := buildCmd(t)
	dir := seedLog(t)
	if err := exec.Command(bin, "-dir", dir, "-device", "nope").Run(); err == nil {
		t.Fatal("unknown device should exit non-zero")
	}
}
