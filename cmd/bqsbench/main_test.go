package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildCmd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cmd.bin")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestSmokeEngineBench(t *testing.T) {
	bin := buildCmd(t)
	out, err := exec.Command(bin, "-engine", "-devices", "5", "-fixes", "40", "-shards", "2").CombinedOutput()
	if err != nil {
		t.Fatalf("bqsbench -engine: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "ingested 200 fixes") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestSmokeEngineBenchPersist(t *testing.T) {
	bin := buildCmd(t)
	dir := filepath.Join(t.TempDir(), "log")
	out, err := exec.Command(bin, "-engine", "-devices", "5", "-fixes", "40", "-shards", "2", "-persist", dir).CombinedOutput()
	if err != nil {
		t.Fatalf("bqsbench -engine -persist: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "persisted 5 trajectories") {
		t.Fatalf("persistence not reported:\n%s", s)
	}
	// The durable run writes the sharded layout: per-shard segment files.
	segs, err := filepath.Glob(filepath.Join(dir, "shard-*", "seg-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files written: %v %v", segs, err)
	}
}

func TestSmokeEngineBenchCpusMatrix(t *testing.T) {
	bin := buildCmd(t)
	dir := filepath.Join(t.TempDir(), "log")
	out, err := exec.Command(bin, "-engine", "-devices", "5", "-fixes", "40",
		"-cpus", "1,2", "-persist", dir).CombinedOutput()
	if err != nil {
		t.Fatalf("bqsbench -engine -cpus: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"=== GOMAXPROCS=1 shards=1 ===", "=== GOMAXPROCS=2 shards=2 ==="} {
		if !strings.Contains(s, want) {
			t.Fatalf("matrix pass header %q missing:\n%s", want, s)
		}
	}
	// Each pass persists into its own subdirectory, sharded per core.
	for _, sub := range []string{"c1", "c2"} {
		segs, err := filepath.Glob(filepath.Join(dir, sub, "shard-*", "seg-*.log"))
		if err != nil || len(segs) == 0 {
			t.Fatalf("pass %s wrote no segment files: %v %v", sub, segs, err)
		}
	}
	// -cpus without -engine is rejected.
	if err := exec.Command(bin, "-cpus", "1,2").Run(); err == nil {
		t.Fatal("-cpus without -engine accepted")
	}
}

func TestSmokePersistRequiresEngine(t *testing.T) {
	bin := buildCmd(t)
	if err := exec.Command(bin, "-persist", t.TempDir()).Run(); err == nil {
		t.Fatal("-persist without -engine accepted")
	}
}

func TestSmokeEngineBenchQuery(t *testing.T) {
	bin := buildCmd(t)
	dir := filepath.Join(t.TempDir(), "log")
	out, err := exec.Command(bin, "-engine", "-devices", "20", "-fixes", "60", "-shards", "2",
		"-persist", dir, "-query").CombinedOutput()
	if err != nil {
		t.Fatalf("bqsbench -engine -persist -query: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "query window (selective") || !strings.Contains(s, "query window (full") {
		t.Fatalf("window-query report missing:\n%s", s)
	}
	// -query without -persist is rejected.
	if err := exec.Command(bin, "-engine", "-query").Run(); err == nil {
		t.Fatal("-query without -persist accepted")
	}
}
