// Command bqsbench regenerates every table and figure of the paper's
// evaluation section against the generated stand-in datasets.
//
// Usage:
//
//	bqsbench [-exp all|fig3|fig6|fig7|fig8|table1|table2|table3|ablation]
//	         [-quick] [-csv dir]
//
// -quick shrinks the datasets for a fast smoke run; -csv writes the raw
// series (plus the Figure 8(a) scatter data) as CSV files for plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/trajcomp/bqs/internal/eval"
	"github.com/trajcomp/bqs/internal/stream"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, fig3, fig6, fig7, fig8, table1, table2, table3, ablation)")
	quick := flag.Bool("quick", false, "use small datasets for a fast smoke run")
	csvDir := flag.String("csv", "", "directory to write raw CSV series into")
	flag.Parse()

	scale := eval.ScaleFull
	if *quick {
		scale = eval.ScaleQuick
	}
	fmt.Fprintln(os.Stderr, "generating datasets...")
	suite := eval.NewSuite(scale)
	fmt.Println(suite.Describe())
	fmt.Println()

	want := func(name string) bool { return *exp == "all" || *exp == name }
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "bqsbench:", err)
		os.Exit(1)
	}

	if want("fig3") {
		r, err := eval.Fig3(suite.Bat, 5, 100)
		if err != nil {
			fail(err)
		}
		fmt.Println(r)
		if *csvDir != "" {
			var sb strings.Builder
			sb.WriteString("index,lower,upper,actual\n")
			for _, row := range r.Rows {
				fmt.Fprintf(&sb, "%d,%.4f,%.4f,%.4f\n", row.Index, row.LB, row.UB, row.Actual)
			}
			writeFile(*csvDir, "fig3_bounds.csv", sb.String())
		}
	}

	if want("fig6") {
		for _, ds := range []struct {
			d    eval.Dataset
			tols []float64
		}{
			{suite.Bat, eval.BatTolerances()},
			{suite.Vehicle, eval.VehicleTolerances()},
		} {
			r, err := eval.Fig6(ds.d, ds.tols)
			if err != nil {
				fail(err)
			}
			fmt.Println(r)
			if *csvDir != "" {
				var sb strings.Builder
				sb.WriteString("tolerance,pruning\n")
				for _, row := range r.Rows {
					fmt.Fprintf(&sb, "%.1f,%.4f\n", row.Tolerance, row.Pruning)
				}
				writeFile(*csvDir, "fig6_"+ds.d.Name+".csv", sb.String())
			}
		}
	}

	if want("fig7") {
		for _, ds := range []struct {
			d    eval.Dataset
			tols []float64
		}{
			{suite.Bat, eval.BatTolerances()},
			{suite.Vehicle, eval.VehicleTolerances()},
		} {
			r, err := eval.Fig7(ds.d, ds.tols, suite.BufSize)
			if err != nil {
				fail(err)
			}
			fmt.Println(r)
			if !r.BoundOK {
				fail(fmt.Errorf("fig7 %s: an error-bounded run violated its bound", ds.d.Name))
			}
			if *csvDir != "" {
				var sb strings.Builder
				sb.WriteString("tolerance")
				for _, a := range eval.Fig7Algos {
					sb.WriteString("," + string(a))
				}
				sb.WriteString("\n")
				for _, row := range r.Rows {
					fmt.Fprintf(&sb, "%.1f", row.Tolerance)
					for _, a := range eval.Fig7Algos {
						fmt.Fprintf(&sb, ",%.5f", row.Rate[a])
					}
					sb.WriteString("\n")
				}
				writeFile(*csvDir, "fig7_"+ds.d.Name+".csv", sb.String())
			}
		}
	}

	if want("fig8") {
		r, err := eval.Fig8(suite.Walk, eval.BatTolerances())
		if err != nil {
			fail(err)
		}
		fmt.Println(r)
		if *csvDir != "" {
			var sb strings.Builder
			sb.WriteString("tolerance,fbqs,dr\n")
			for _, row := range r.Rows {
				fmt.Fprintf(&sb, "%.1f,%d,%d\n", row.Tolerance, row.FBQS, row.DR)
			}
			writeFile(*csvDir, "fig8b_points.csv", sb.String())
			// Figure 8(a): the scatter itself.
			f, err := os.Create(filepath.Join(*csvDir, "fig8a_walk.csv"))
			if err != nil {
				fail(err)
			}
			if err := stream.WriteCSV(f, suite.Walk.Points); err != nil {
				fail(err)
			}
			f.Close()
		}
	}

	if want("table1") {
		sizes := []int{2000, 4000, 8000, 16000}
		if *quick {
			sizes = []int{1000, 2000, 4000}
		}
		r, err := eval.Table1(sizes)
		if err != nil {
			fail(err)
		}
		fmt.Println(r)
	}

	if want("table2") {
		r, err := eval.Table2(suite)
		if err != nil {
			fail(err)
		}
		fmt.Println(r)
	}

	if want("table3") {
		n := 87704 // the paper's stream length
		if *quick {
			n = 0
		}
		r, err := eval.Table3(suite, []int{32, 64, 128, 256}, n)
		if err != nil {
			fail(err)
		}
		fmt.Println(r)
	}

	if want("ablation") {
		r, err := eval.Ablation(suite.Bat, 10)
		if err != nil {
			fail(err)
		}
		fmt.Println(r)
	}
}

func writeFile(dir, name, content string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "bqsbench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bqsbench:", err)
		os.Exit(1)
	}
}
