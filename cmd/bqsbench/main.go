// Command bqsbench regenerates every table and figure of the paper's
// evaluation section against the generated stand-in datasets, and
// benchmarks the server-side ingestion engine.
//
// Usage:
//
//	bqsbench [-exp all|fig3|fig6|fig7|fig8|table1|table2|table3|ablation]
//	         [-quick] [-csv dir]
//	bqsbench -engine [-devices N] [-shards M] [-fixes N] [-compressor name]
//	         [-tol metres] [-merge metres] [-persist dir] [-query] [-cachemb N]
//	bqsbench -engine -cpus 1,2,4,8 ...
//	bqsbench -engine -serve [-devices N] [-fixes N] ...
//	bqsbench -engine -client host:port [-devices N] [-fixes N] ...
//	bqsbench ... [-cpuprofile file] [-memprofile file]
//
// -quick shrinks the datasets for a fast smoke run; -csv writes the raw
// series (plus the Figure 8(a) scatter data) as CSV files for plotting.
// -engine switches to a fleet-ingestion throughput run: N devices with
// synthetic correlated-random-walk trajectories are batched through the
// sharded engine and the wall-clock throughput is reported. -persist
// additionally opens a sharded append-only segment log in the given
// directory (one log shard per engine shard, routed by the same device
// hash) and measures the same run with durability on (each flushed
// session is written and fsync'd through the Sync barrier). -query
// (requires -persist) spreads the devices over a spatial grid of
// separate cells, then benchmarks durable window queries on the
// reopened log: a selective window covering a few percent of the fleet
// and a full-extent window, reporting latency and how many records the
// block indexes let the query skip decoding.
//
// -cpus runs the whole engine benchmark once per GOMAXPROCS value — the
// cores axis of the scaling matrix. Unless -shards is given explicitly,
// each pass uses as many shards as cores (the deployment sweet spot:
// one worker per core, each owning its own log shard); -persist runs
// write each pass into its own c<N> subdirectory so the passes stay
// independent.
//
// -serve benchmarks the network ingest path end to end: an in-process
// loopback server (the same engine bqsd runs) is driven through the
// binary frame protocol, honoring backpressure retry hints, then the
// durable result is queried back over the wire. -client does the same
// against an external bqsd — a live daemon's load generator.
//
// -cpuprofile and -memprofile write pprof profiles covering the whole run
// (either mode), for `go tool pprof`; the memory profile is an allocation
// snapshot taken after the run finishes.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"github.com/trajcomp/bqs/internal/core"
	"github.com/trajcomp/bqs/internal/engine"
	"github.com/trajcomp/bqs/internal/eval"
	"github.com/trajcomp/bqs/internal/stream"
	"github.com/trajcomp/bqs/internal/synth"
	"github.com/trajcomp/bqs/internal/trajstore"
	"github.com/trajcomp/bqs/internal/trajstore/segmentlog"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, fig3, fig6, fig7, fig8, table1, table2, table3, ablation)")
	quick := flag.Bool("quick", false, "use small datasets for a fast smoke run")
	csvDir := flag.String("csv", "", "directory to write raw CSV series into")
	engineMode := flag.Bool("engine", false, "run the ingestion-engine throughput benchmark instead of the paper experiments")
	devices := flag.Int("devices", 1000, "engine mode: number of concurrent device sessions")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0), "engine mode: shard worker count")
	fixesPer := flag.Int("fixes", 500, "engine mode: fixes per device")
	compName := flag.String("compressor", "fbqs", fmt.Sprintf("engine mode: compressor name %v", stream.Names()))
	tol := flag.Float64("tol", 10, "engine mode: deviation tolerance in metres")
	mergeTol := flag.Float64("merge", 5, "engine mode: store merge tolerance in metres (0 disables merging)")
	persistDir := flag.String("persist", "", "engine mode: segment-log directory for a durable run ('' keeps the run in-memory)")
	trailKeys := flag.Int("trail", 0, "engine mode: MaxTrailKeys per session (0 = engine default; small values force chunked records)")
	segBytes := flag.Int64("segbytes", 0, "engine mode with -persist: segment rotation threshold in bytes (0 = log default; small values seal segments for -compact)")
	compact := flag.Bool("compact", false, "engine mode with -persist: compact the log after the run and report before/after disk bytes")
	query := flag.Bool("query", false, "engine mode with -persist: benchmark durable window queries (selective + full) on the reopened log")
	cacheMB := flag.Int64("cachemb", 0, "engine mode with -query: read-side record cache budget in MiB for the reopened log (0 = off)")
	cpusFlag := flag.String("cpus", "", "engine mode: comma-separated GOMAXPROCS matrix (e.g. 1,2,4,8); the whole benchmark runs once per value")
	serveMode := flag.Bool("serve", false, "engine mode: run an in-process loopback bqsd server and drive it over the wire protocol")
	clientAddr := flag.String("client", "", "engine mode: drive an external bqsd at this address instead of an in-process engine")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file after the run")
	flag.Parse()

	if err := startProfiles(*cpuProfile, *memProfile); err != nil {
		fmt.Fprintln(os.Stderr, "bqsbench:", err)
		os.Exit(1)
	}
	defer stopProfiles()

	if *engineMode {
		cpuList, err := parseCpus(*cpusFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bqsbench:", err)
			os.Exit(2)
		}
		shardsSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "shards" {
				shardsSet = true
			}
		})
		fail := func(err error) {
			stopProfiles()
			fmt.Fprintln(os.Stderr, "bqsbench:", err)
			os.Exit(1)
		}
		if *serveMode || *clientAddr != "" {
			if *serveMode && *clientAddr != "" {
				fail(fmt.Errorf("-serve and -client are mutually exclusive"))
			}
			if cpuList != nil {
				fail(fmt.Errorf("-cpus is not supported with -serve/-client"))
			}
			if err := runServerBench(*serveMode, *clientAddr, *devices, *shards, *fixesPer, *compName, *tol, *persistDir, *trailKeys, *segBytes); err != nil {
				fail(err)
			}
			return
		}
		if cpuList == nil {
			if err := runEngineBench(*devices, *shards, *fixesPer, *compName, *tol, *mergeTol, *persistDir, *trailKeys, *segBytes, *cacheMB<<20, *compact, *query); err != nil {
				fail(err)
			}
			return
		}
		prev := runtime.GOMAXPROCS(0)
		for _, c := range cpuList {
			runtime.GOMAXPROCS(c)
			sh := *shards
			if !shardsSet {
				sh = c // one worker per core, each owning its log shard
			}
			dir := *persistDir
			if dir != "" {
				dir = filepath.Join(dir, fmt.Sprintf("c%d", c))
			}
			fmt.Printf("=== GOMAXPROCS=%d shards=%d ===\n", c, sh)
			if err := runEngineBench(*devices, sh, *fixesPer, *compName, *tol, *mergeTol, dir, *trailKeys, *segBytes, *cacheMB<<20, *compact, *query); err != nil {
				fail(err)
			}
			fmt.Println()
		}
		runtime.GOMAXPROCS(prev)
		return
	}
	if *cpusFlag != "" {
		fmt.Fprintln(os.Stderr, "bqsbench: -cpus requires -engine")
		os.Exit(2)
	}
	if *persistDir != "" {
		fmt.Fprintln(os.Stderr, "bqsbench: -persist requires -engine")
		os.Exit(2)
	}
	if *compact {
		fmt.Fprintln(os.Stderr, "bqsbench: -compact requires -engine -persist")
		os.Exit(2)
	}
	if *query {
		fmt.Fprintln(os.Stderr, "bqsbench: -query requires -engine -persist")
		os.Exit(2)
	}

	scale := eval.ScaleFull
	if *quick {
		scale = eval.ScaleQuick
	}
	fmt.Fprintln(os.Stderr, "generating datasets...")
	suite := eval.NewSuite(scale)
	fmt.Println(suite.Describe())
	fmt.Println()

	want := func(name string) bool { return *exp == "all" || *exp == name }
	fail := func(err error) {
		stopProfiles()
		fmt.Fprintln(os.Stderr, "bqsbench:", err)
		os.Exit(1)
	}

	if want("fig3") {
		r, err := eval.Fig3(suite.Bat, 5, 100)
		if err != nil {
			fail(err)
		}
		fmt.Println(r)
		if *csvDir != "" {
			var sb strings.Builder
			sb.WriteString("index,lower,upper,actual\n")
			for _, row := range r.Rows {
				fmt.Fprintf(&sb, "%d,%.4f,%.4f,%.4f\n", row.Index, row.LB, row.UB, row.Actual)
			}
			writeFile(*csvDir, "fig3_bounds.csv", sb.String())
		}
	}

	if want("fig6") {
		for _, ds := range []struct {
			d    eval.Dataset
			tols []float64
		}{
			{suite.Bat, eval.BatTolerances()},
			{suite.Vehicle, eval.VehicleTolerances()},
		} {
			r, err := eval.Fig6(ds.d, ds.tols)
			if err != nil {
				fail(err)
			}
			fmt.Println(r)
			if *csvDir != "" {
				var sb strings.Builder
				sb.WriteString("tolerance,pruning\n")
				for _, row := range r.Rows {
					fmt.Fprintf(&sb, "%.1f,%.4f\n", row.Tolerance, row.Pruning)
				}
				writeFile(*csvDir, "fig6_"+ds.d.Name+".csv", sb.String())
			}
		}
	}

	if want("fig7") {
		for _, ds := range []struct {
			d    eval.Dataset
			tols []float64
		}{
			{suite.Bat, eval.BatTolerances()},
			{suite.Vehicle, eval.VehicleTolerances()},
		} {
			r, err := eval.Fig7(ds.d, ds.tols, suite.BufSize)
			if err != nil {
				fail(err)
			}
			fmt.Println(r)
			if !r.BoundOK {
				fail(fmt.Errorf("fig7 %s: an error-bounded run violated its bound", ds.d.Name))
			}
			if *csvDir != "" {
				var sb strings.Builder
				sb.WriteString("tolerance")
				for _, a := range eval.Fig7Algos {
					sb.WriteString("," + string(a))
				}
				sb.WriteString("\n")
				for _, row := range r.Rows {
					fmt.Fprintf(&sb, "%.1f", row.Tolerance)
					for _, a := range eval.Fig7Algos {
						fmt.Fprintf(&sb, ",%.5f", row.Rate[a])
					}
					sb.WriteString("\n")
				}
				writeFile(*csvDir, "fig7_"+ds.d.Name+".csv", sb.String())
			}
		}
	}

	if want("fig8") {
		r, err := eval.Fig8(suite.Walk, eval.BatTolerances())
		if err != nil {
			fail(err)
		}
		fmt.Println(r)
		if *csvDir != "" {
			var sb strings.Builder
			sb.WriteString("tolerance,fbqs,dr\n")
			for _, row := range r.Rows {
				fmt.Fprintf(&sb, "%.1f,%d,%d\n", row.Tolerance, row.FBQS, row.DR)
			}
			writeFile(*csvDir, "fig8b_points.csv", sb.String())
			// Figure 8(a): the scatter itself.
			f, err := os.Create(filepath.Join(*csvDir, "fig8a_walk.csv"))
			if err != nil {
				fail(err)
			}
			if err := stream.WriteCSV(f, suite.Walk.Points); err != nil {
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
		}
	}

	if want("table1") {
		sizes := []int{2000, 4000, 8000, 16000}
		if *quick {
			sizes = []int{1000, 2000, 4000}
		}
		r, err := eval.Table1(sizes)
		if err != nil {
			fail(err)
		}
		fmt.Println(r)
	}

	if want("table2") {
		r, err := eval.Table2(suite)
		if err != nil {
			fail(err)
		}
		fmt.Println(r)
	}

	if want("table3") {
		n := 87704 // the paper's stream length
		if *quick {
			n = 0
		}
		r, err := eval.Table3(suite, []int{32, 64, 128, 256}, n)
		if err != nil {
			fail(err)
		}
		fmt.Println(r)
	}

	if want("ablation") {
		r, err := eval.Ablation(suite.Bat, 10)
		if err != nil {
			fail(err)
		}
		fmt.Println(r)
	}
}

// parseCpus decodes the -cpus matrix; "" yields nil (single pass at the
// current GOMAXPROCS).
func parseCpus(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-cpus: bad value %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// runEngineBench pushes devices×fixesPer synthetic fixes through the
// sharded ingestion engine in interleaved batches and reports wall-clock
// throughput plus compression and storage statistics. With persistDir
// set, flushed sessions are also appended to a sharded segment log there
// (one log shard per engine shard) and the final Sync is a durability
// barrier.
func runEngineBench(devices, shards, fixesPer int, compName string, tol, mergeTol float64, persistDir string, trailKeys int, segBytes, cacheBytes int64, compact, query bool) error {
	if devices <= 0 || fixesPer <= 0 {
		return fmt.Errorf("devices and fixes must be positive")
	}
	if compact && persistDir == "" {
		return fmt.Errorf("-compact requires -persist")
	}
	if query && persistDir == "" {
		return fmt.Errorf("-query requires -persist")
	}
	durability := "off"
	if persistDir != "" {
		durability = "segment log at " + persistDir
	}
	fmt.Printf("engine benchmark: %d devices × %d fixes, %d shards, compressor %q, tol %g m, merge %g m, durability %s\n",
		devices, fixesPer, shards, compName, tol, mergeTol, durability)

	// Construct the engine first: a bad compressor name, tolerance or
	// log directory fails before the (possibly large) workload is
	// generated.
	cfg := engine.Config{
		Compressor:   compName,
		Tolerance:    tol,
		Shards:       shards,
		MaxTrailKeys: trailKeys,
		Store:        trajstore.Config{MergeTolerance: mergeTol},
	}
	var lg *segmentlog.ShardedLog
	if persistDir != "" {
		var err error
		lg, err = segmentlog.OpenSharded(persistDir, shards, segmentlog.Options{MaxSegmentBytes: segBytes})
		if err != nil {
			return err
		}
		// An existing directory's persisted shard count is authoritative;
		// the engine must route devices the same way.
		cfg.Shards = lg.NumShards()
		cfg.Persister = lg
	}
	e, err := engine.New(cfg)
	if err != nil {
		if lg != nil {
			_ = lg.Close() // engine construction failed; nothing was appended
		}
		return err
	}

	// Per-device trajectories from the paper's synthetic walk model,
	// interleaved round-robin so every batch mixes devices — the
	// realistic arrival order of a fleet reporting concurrently.
	fmt.Println("generating workload...")
	// In query mode each device walks inside its own grid cell — a
	// fleet spread over a region rather than stacked on one square —
	// so selective windows have real spatial selectivity to measure.
	const cellSep = 12000 // metres between cell origins (10 km walk + 2 km gap)
	grid := int(math.Ceil(math.Sqrt(float64(devices))))
	tracks := make([][]core.Point, devices)
	names := make([]string, devices)
	for d := range tracks {
		cfg := synth.DefaultWalkConfig(int64(d) + 1)
		cfg.N = fixesPer
		tracks[d] = synth.Walk(cfg).Points()
		if query {
			offX := float64(d%grid) * cellSep
			offY := float64(d/grid) * cellSep
			for i := range tracks[d] {
				tracks[d][i].X += offX
				tracks[d][i].Y += offY
			}
		}
		names[d] = fmt.Sprintf("dev-%06d", d)
	}
	total := devices * fixesPer
	fixes := make([]engine.Fix, 0, total)
	for i := 0; i < fixesPer; i++ {
		for d := range tracks {
			fixes = append(fixes, engine.Fix{Device: names[d], Point: tracks[d][i]})
		}
	}

	const batchSize = 4096
	start := time.Now()
	for lo := 0; lo < total; lo += batchSize {
		hi := lo + batchSize
		if hi > total {
			hi = total
		}
		if err := e.Ingest(fixes[lo:hi]); err != nil {
			return err
		}
	}
	if err := e.Sync(); err != nil {
		return err
	}
	elapsed := time.Since(start)
	closeStart := time.Now()
	if err := e.Close(); err != nil { // flushes sessions; durable flush when persisting
		return err
	}
	closeElapsed := time.Since(closeStart)

	s := e.Stats()
	fmt.Printf("ingested %d fixes in %v  (%.0f fixes/s, %.0f ns/fix)\n",
		s.Fixes, elapsed.Round(time.Millisecond),
		float64(s.Fixes)/elapsed.Seconds(), float64(elapsed.Nanoseconds())/float64(s.Fixes))
	fmt.Printf("sessions: %d opened, %d evicted\n", s.SessionsOpened, s.SessionsEvicted)
	fmt.Printf("key points: %d  (compression rate %.4f)\n", s.KeyPoints, s.CompressionRate())
	fmt.Printf("store: %d segments from %d inserted (%d merged), %s wire bytes\n",
		s.Store.Segments, s.Store.Inserted, s.Store.Merged, humanBytes(e.Stores().StorageBytes()))
	if lg != nil {
		// The log was closed by e.Close; reopen it to report what landed
		// on disk (also a cheap recovery self-check).
		rl, err := segmentlog.OpenSharded(persistDir, shards, segmentlog.Options{MaxSegmentBytes: segBytes, CacheBytes: cacheBytes})
		if err != nil {
			return fmt.Errorf("reopening log: %w", err)
		}
		defer rl.Close()
		ls := rl.Stats()
		total := elapsed + closeElapsed
		fmt.Printf("persisted %d trajectories to %d segment file(s), %s on disk (flush+close %v)\n",
			ls.Records, ls.Segments, humanBytes(int(ls.Bytes)), closeElapsed.Round(time.Millisecond))
		fmt.Printf("durable throughput incl. final flush: %.0f fixes/s\n",
			float64(s.Fixes)/total.Seconds())
		if ls.Truncated != 0 {
			return fmt.Errorf("log reopen truncated %d bytes after a clean close", ls.Truncated)
		}
		if compact {
			// Chunk-merge plus ageing at twice the ingest tolerance —
			// the standard "old data may be coarser" configuration.
			res, err := rl.Compact(segmentlog.CompactionPolicy{
				MergeChunks:     true,
				CoarseTolerance: 2 * tol,
			})
			if err != nil {
				return fmt.Errorf("compacting log: %w", err)
			}
			after := rl.Stats()
			fmt.Printf("compaction: disk bytes %d before, %d after (saved %.1f%%); %d merged, %d deduped, %d aged, generation %d\n",
				ls.Bytes, after.Bytes, 100*float64(ls.Bytes-after.Bytes)/float64(ls.Bytes),
				res.Merged, res.Deduped, res.Aged, res.Gen)
		}
		if query {
			if err := runQueryBench(rl, devices, grid, cellSep); err != nil {
				return err
			}
		}
	}
	return nil
}

// runQueryBench measures durable window queries on the reopened log:
// a selective window covering the first few device cells (a few percent
// of the fleet) and a full-extent window. The MetersPerDegree default
// (1e5) maps the metric workload grid to the log's degree coordinates.
func runQueryBench(rl *segmentlog.ShardedLog, devices, grid int, cellSep float64) error {
	const m = 1e5
	total := rl.Stats().Records
	type window struct {
		name                   string
		inRange                int
		iters                  int
		minX, minY, maxX, maxY float64
	}
	// Selective: the first k cells of row 0 (~3-5% of the fleet).
	k := devices / 20
	if k < 1 {
		k = 1
	}
	if k > grid {
		k = grid
	}
	margin := 50.0
	ws := []window{
		{"selective", k, 20,
			-margin / m, -margin / m,
			(float64(k-1)*cellSep + 10000 + margin) / m, (10000 + margin) / m},
		{"full", devices, 5,
			-margin / m, -margin / m,
			(float64(grid)*cellSep + margin) / m, (float64(grid)*cellSep + margin) / m},
	}
	for _, w := range ws {
		var st segmentlog.WindowStats
		var matched int
		start := time.Now()
		for i := 0; i < w.iters; i++ {
			recs, s, err := rl.QueryWindowStats(w.minX, w.minY, w.maxX, w.maxY, 0, math.MaxUint32)
			if err != nil {
				return fmt.Errorf("window query (%s): %w", w.name, err)
			}
			st = s
			matched = len(recs)
		}
		per := time.Since(start) / time.Duration(w.iters)
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(st.RecordsDecoded) / float64(total)
		}
		fmt.Printf("query window (%s, %d of %d devices): %v/query, decoded %d of %d records (%.1f%%), matched %d, %d/%d segments pruned\n",
			w.name, w.inRange, devices, per.Round(time.Microsecond),
			st.RecordsDecoded, total, pct, matched, st.SegmentsPruned, st.Segments)
		if cs := rl.CacheStats(); cs.Capacity > 0 {
			fmt.Printf("query window (%s) cache: %d hits on last query, %d/%s resident\n",
				w.name, st.CacheHits, cs.Entries, humanBytes(int(cs.Bytes)))
		}
	}
	return nil
}

// Profile state between startProfiles and stopProfiles.
var (
	cpuProfileFile *os.File
	memProfilePath string
)

// startProfiles begins CPU profiling and records the memory-profile
// destination; either argument may be empty.
func startProfiles(cpuPath, memPath string) error {
	memProfilePath = memPath
	if cpuPath == "" {
		return nil
	}
	f, err := os.Create(cpuPath)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		_ = f.Close() // profiling never started; the start error is the story
		return err
	}
	cpuProfileFile = f
	return nil
}

// stopProfiles finishes the CPU profile and writes the allocation profile.
// It is idempotent so error paths can call it before os.Exit.
func stopProfiles() {
	if cpuProfileFile != nil {
		pprof.StopCPUProfile()
		if err := cpuProfileFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "bqsbench: cpuprofile:", err)
		}
		cpuProfileFile = nil
	}
	if memProfilePath == "" {
		return
	}
	path := memProfilePath
	memProfilePath = ""
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bqsbench: memprofile:", err)
		return
	}
	defer f.Close()
	runtime.GC() // flush recent allocations into the profile
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "bqsbench: memprofile:", err)
	}
}

func humanBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d", n)
	}
}

func writeFile(dir, name, content string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "bqsbench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bqsbench:", err)
		os.Exit(1)
	}
}
