package main

import (
	"fmt"
	"math"
	"net"
	"os"
	"time"

	"github.com/trajcomp/bqs/internal/engine"
	"github.com/trajcomp/bqs/internal/proto"
	"github.com/trajcomp/bqs/internal/server"
	"github.com/trajcomp/bqs/internal/synth"
	"github.com/trajcomp/bqs/internal/trajstore"
	"github.com/trajcomp/bqs/internal/trajstore/segmentlog"
)

// runServerBench measures the network ingest + query path. With serve
// set it spins up an in-process bqsd-equivalent on a loopback listener
// (persisting into persistDir, or a temporary directory) and drives it;
// with clientAddr set it drives an external daemon instead. Fixes flow
// through the real wire protocol either way — encode, TCP, decode,
// TryIngest with retry-after honoring — so the number reported is the
// full server-path cost, comparable against the in-process `-engine`
// figure.
func runServerBench(serve bool, clientAddr string, devices, shards, fixesPer int, compName string, tol float64, persistDir string, trailKeys int, segBytes int64) error {
	if devices <= 0 || fixesPer <= 0 {
		return fmt.Errorf("devices and fixes must be positive")
	}

	addr := clientAddr
	if serve {
		dir := persistDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "bqsbench-serve-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		srv, err := server.New(server.Config{
			Dir: dir,
			Engine: engine.Config{
				Compressor:   compName,
				Tolerance:    tol,
				Shards:       shards,
				MaxTrailKeys: trailKeys,
			},
			Log: segmentlog.Options{MaxSegmentBytes: segBytes},
		})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go srv.Serve(ln)
		defer srv.Shutdown()
		addr = ln.Addr().String()
		fmt.Printf("loopback server on %s, data in %s\n", addr, dir)
	}

	fmt.Printf("server benchmark: %d devices × %d fixes via %s, compressor %q, tol %g m\n",
		devices, fixesPer, addr, compName, tol)

	c, err := server.Dial(addr, "bench")
	if err != nil {
		return fmt.Errorf("dial %s: %w", addr, err)
	}
	defer c.Close()

	// The `-engine` workload, converted to wire keys (the default 1e5
	// m/° mapping — what the server inverts on receipt).
	fmt.Println("generating workload...")
	const m = 1e5
	tracks := make([][]trajstore.GeoKey, devices)
	names := make([]string, devices)
	for d := range tracks {
		wcfg := synth.DefaultWalkConfig(int64(d) + 1)
		wcfg.N = fixesPer
		pts := synth.Walk(wcfg).Points()
		keys := make([]trajstore.GeoKey, len(pts))
		for i, p := range pts {
			t := p.T
			if t < 0 {
				t = 0
			}
			keys[i] = trajstore.GeoKey{Lat: p.Y / m, Lon: p.X / m, T: uint32(t)}
		}
		tracks[d] = keys
		names[d] = fmt.Sprintf("dev-%06d", d)
	}

	// Interleave like a fleet: every frame carries a window of fixes
	// for a group of devices, sized to stay well under the frame cap.
	const fixWindow = 100
	devPerFrame := 1 + (2<<20)/(fixWindow*16)
	var accepted uint64
	start := time.Now()
	for lo := 0; lo < fixesPer; lo += fixWindow {
		hi := lo + fixWindow
		if hi > fixesPer {
			hi = fixesPer
		}
		for d0 := 0; d0 < devices; d0 += devPerFrame {
			d1 := d0 + devPerFrame
			if d1 > devices {
				d1 = devices
			}
			batches := make([]proto.DeviceBatch, 0, d1-d0)
			for d := d0; d < d1; d++ {
				batches = append(batches, proto.DeviceBatch{Device: names[d], Keys: tracks[d][lo:hi]})
			}
			n, err := c.IngestAll(batches, 200)
			if err != nil {
				return fmt.Errorf("ingest: %w", err)
			}
			accepted += n
		}
	}
	ingestElapsed := time.Since(start)

	flushStart := time.Now()
	if err := c.Sync(true); err != nil {
		return fmt.Errorf("sync(flush): %w", err)
	}
	flushElapsed := time.Since(flushStart)
	total := ingestElapsed + flushElapsed

	fmt.Printf("server ingest: %d fixes in %v  (%.0f fixes/s, %.0f ns/fix)\n",
		accepted, ingestElapsed.Round(time.Millisecond),
		float64(accepted)/ingestElapsed.Seconds(), float64(ingestElapsed.Nanoseconds())/float64(accepted))
	fmt.Printf("durable server throughput incl. flush barrier: %.0f fixes/s (flush %v)\n",
		float64(accepted)/total.Seconds(), flushElapsed.Round(time.Millisecond))

	// Query the durable result back over the wire: one device's full
	// trail, then a full-extent window.
	qStart := time.Now()
	recs, err := c.QueryTime(names[0], 0, math.MaxUint32)
	if err != nil {
		return fmt.Errorf("query time: %w", err)
	}
	fmt.Printf("server query (device): %d records in %v\n", len(recs), time.Since(qStart).Round(time.Microsecond))
	qStart = time.Now()
	w, err := c.QueryWindow(-180, -90, 180, 90, 0, math.MaxUint32)
	if err != nil {
		return fmt.Errorf("query window: %w", err)
	}
	fmt.Printf("server query (full window): %d records in %v\n", len(w), time.Since(qStart).Round(time.Millisecond))
	if len(recs) == 0 || len(w) == 0 {
		return fmt.Errorf("durable queries returned nothing (device %d, window %d records)", len(recs), len(w))
	}
	return nil
}
