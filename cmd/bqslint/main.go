// Command bqslint runs the repo's invariant analyzers — a
// multichecker over internal/analysis — at go-vet speed.
//
// Usage:
//
//	go run ./cmd/bqslint ./...        # lint the whole module
//	go run ./cmd/bqslint -list        # describe the analyzers
//
// Exit status: 0 clean, 1 diagnostics reported, 2 load or usage
// error. Suppress a deliberate exception in-source with
//
//	//bqslint:ignore <analyzer> <reason>
//
// on the offending line or the line above it; the reason is
// mandatory, and a directive that suppresses nothing is itself a
// diagnostic.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/trajcomp/bqs/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: bqslint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bqslint:", err)
		os.Exit(2)
	}
	diags, err := analysis.RunAnalyzers(pkgs, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "bqslint:", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		name := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && len(rel) < len(name) {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: %s (%s)\n", name, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
