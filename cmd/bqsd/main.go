// Command bqsd is the BQS trajectory daemon: a TCP server that runs
// the durable sharded ingestion engine behind the length-prefixed
// binary frame protocol (internal/proto). Devices stream batched fixes
// in; the server compresses them online (per-device sessions, bounded
// deviation), persists finalized trajectories to per-tenant sharded
// segment logs, and answers spatio-temporal window and per-device
// time-range queries from disk.
//
// Usage:
//
//	bqsd -dir data [-addr 127.0.0.1:4980] [-tol 10] [-shards N]
//	     [-queue N] [-idle 5m] [-trail N] [-segbytes N] [-cache-mb N]
//	     [-compact-interval 10m] [-retry-after 50ms] [-drain-timeout 10s]
//	     [-metrics 127.0.0.1:4981]
//
// With -metrics set, an HTTP listener serves /metrics: per-tenant
// ingest, session, queue, persist/compact-failure, read-cache and
// segment-log counters in the Prometheus text format. -cache-mb sizes
// the per-tenant read cache that makes repeated window queries serve
// from memory (0 disables it).
//
// Each tenant named in a connection's handshake gets its own engine
// and flock-guarded log directory under -dir. Ingest is explicitly
// backpressured: a batch landing on a full shard queue is rejected in
// the ack with a retry-after hint — the daemon never buffers rejected
// fixes, so memory stays bounded no matter how far the disk falls
// behind (see `bqsbench -client` for a load generator that honors the
// hints).
//
// On SIGTERM/SIGINT the daemon drains: it stops accepting, aborts idle
// connection reads, waits up to -drain-timeout for in-flight requests,
// then flushes every tenant's sessions, syncs, runs a final compaction
// and closes the logs. Exit status is non-zero if the drain surfaced a
// persistence error.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"github.com/trajcomp/bqs/internal/engine"
	"github.com/trajcomp/bqs/internal/server"
	"github.com/trajcomp/bqs/internal/trajstore/segmentlog"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:4980", "listen address")
		dir          = flag.String("dir", "", "data directory; tenant logs live in per-name subdirectories (required)")
		compressor   = flag.String("compressor", "", "compressor each session runs (default: engine default, fbqs)")
		tol          = flag.Float64("tol", 10, "deviation tolerance in metres")
		shards       = flag.Int("shards", 0, "shards per tenant engine/log (0 = GOMAXPROCS; an existing log keeps its persisted count)")
		queue        = flag.Int("queue", 0, "per-shard ingest queue depth in batches (0 = engine default)")
		idle         = flag.Duration("idle", 0, "evict a device session after this long without a fix (0 = only on drain)")
		trail        = flag.Int("trail", 0, "max per-session key points before chunking to disk (0 = engine default)")
		segBytes     = flag.Int64("segbytes", 0, "segment file rotation size in bytes (0 = log default)")
		cacheMB      = flag.Int64("cache-mb", 0, "read-side record cache budget per tenant, in MiB (0 = off)")
		metricsAddr  = flag.String("metrics", "", "HTTP listen address for /metrics (empty = no metrics endpoint)")
		compactEvery = flag.Duration("compact-interval", 0, "background merge/dedup compaction interval per tenant (0 = off)")
		retryAfter   = flag.Duration("retry-after", server.DefaultRetryAfter, "base backpressure retry hint sent to clients")
		drain        = flag.Duration("drain-timeout", server.DefaultDrainTimeout, "max wait for in-flight connections on shutdown")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "bqsd: -dir is required")
		flag.Usage()
		os.Exit(2)
	}

	logOpts := segmentlog.Options{MaxSegmentBytes: *segBytes, CacheBytes: *cacheMB << 20}
	if *compactEvery > 0 {
		logOpts.Compaction = &segmentlog.CompactionPolicy{MergeChunks: true}
	}
	srv, err := server.New(server.Config{
		Dir: *dir,
		Engine: engine.Config{
			Compressor:      *compressor,
			Tolerance:       *tol,
			Shards:          *shards,
			QueueDepth:      *queue,
			IdleTimeout:     *idle,
			MaxTrailKeys:    *trail,
			CompactInterval: *compactEvery,
		},
		Log:          logOpts,
		RetryAfter:   *retryAfter,
		DrainTimeout: *drain,
	})
	if err != nil {
		log.Fatalf("bqsd: %v", err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("bqsd: %v", err)
	}
	// The bound address goes to stdout on its own line so wrappers
	// (smoke tests, bqsbench -serve scripts) can use -addr :0.
	fmt.Printf("bqsd: listening on %s\n", ln.Addr())
	log.Printf("bqsd: data dir %s, tolerance %g m", *dir, *tol)

	var msrv *http.Server
	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatalf("bqsd: metrics: %v", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", srv.MetricsHandler())
		msrv = &http.Server{Handler: mux}
		fmt.Printf("bqsd: metrics on http://%s/metrics\n", mln.Addr())
		go func() {
			if err := msrv.Serve(mln); err != nil && err != http.ErrServerClosed {
				log.Printf("bqsd: metrics server: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case s := <-sig:
		log.Printf("bqsd: %v — draining", s)
	case err := <-serveErr:
		if err != nil {
			log.Printf("bqsd: accept loop failed: %v — draining", err)
		}
	}
	if msrv != nil {
		_ = msrv.Close() // scrape connections carry no durable state
	}
	if err := srv.Shutdown(); err != nil {
		log.Fatalf("bqsd: drain: %v", err)
	}
	log.Print("bqsd: drained clean")
}
