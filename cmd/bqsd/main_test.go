package main

import (
	"bufio"
	"math"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/trajcomp/bqs/internal/proto"
	"github.com/trajcomp/bqs/internal/server"
	"github.com/trajcomp/bqs/internal/trajstore"
	"github.com/trajcomp/bqs/internal/trajstore/segmentlog"
)

func buildCmd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "bqsd.bin")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestDaemonLifecycle is the full smoke pass: start on an ephemeral
// port, ingest over the wire, flush + query, SIGTERM-drain, then
// reopen the tenant's log directory and check it recovered clean.
func TestDaemonLifecycle(t *testing.T) {
	bin := buildCmd(t)
	dir := t.TempDir()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-dir", dir, "-tol", "2")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = nil
	if err := cmd.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer cmd.Process.Kill()

	// First stdout line announces the bound address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no address line: %v", sc.Err())
	}
	line := sc.Text()
	addr := line[strings.LastIndex(line, " ")+1:]
	if !strings.Contains(addr, ":") {
		t.Fatalf("cannot parse address from %q", line)
	}

	c, err := server.Dial(addr, "smoke")
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	keys := make([]trajstore.GeoKey, 40)
	for i := range keys {
		keys[i] = trajstore.GeoKey{
			Lat: float64(i%2) * 0.004,
			Lon: float64(i) * 0.0055,
			T:   1000 + uint32(i)*30,
		}
	}
	if _, err := c.IngestAll([]proto.DeviceBatch{{Device: "probe", Keys: keys}}, 10); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if err := c.Sync(true); err != nil {
		t.Fatalf("sync: %v", err)
	}
	recs, err := c.QueryTime("probe", 0, math.MaxUint32)
	if err != nil || len(recs) == 0 {
		t.Fatalf("query: %d records, err %v", len(recs), err)
	}
	w, err := c.QueryWindow(-1, -1, 1, 1, 0, math.MaxUint32)
	if err != nil || len(w) == 0 {
		t.Fatalf("window query: %d records, err %v", len(w), err)
	}
	c.Close()

	// SIGTERM must drain and exit 0 …
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signal: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited dirty: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}

	// … leaving a log directory that reopens without repair: the lock
	// is free, recovery truncates nothing, the data is still there.
	lg, err := segmentlog.OpenSharded(filepath.Join(dir, "smoke"), 0, segmentlog.Options{})
	if err != nil {
		t.Fatalf("reopen tenant log: %v", err)
	}
	defer lg.Close()
	if n := lg.Stats().Truncated; n != 0 {
		t.Fatalf("recovery truncated %d bytes after a clean drain", n)
	}
	got, err := lg.Query("probe", 0, math.MaxUint32)
	if err != nil || len(got) != len(recs) {
		t.Fatalf("reopened log: %d records, err %v; want %d", len(got), err, len(recs))
	}
}

func TestDaemonRequiresDir(t *testing.T) {
	bin := buildCmd(t)
	out, err := exec.Command(bin).CombinedOutput()
	if err == nil {
		t.Fatalf("missing -dir accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "-dir is required") {
		t.Fatalf("unhelpful error:\n%s", out)
	}
}
